//===- interp/Interp.cpp - Concrete schedule exploration -----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "android/Api.h"
#include "android/Callbacks.h"
#include "android/SyntacticReach.h"
#include "interp/Linearize.h"
#include "ir/Printer.h"

#include <cassert>
#include <map>

using namespace nadroid;
using namespace nadroid::interp;
using namespace nadroid::ir;
using android::CallbackKind;

namespace {

//===----------------------------------------------------------------------===//
// Runtime values and heap
//===----------------------------------------------------------------------===//

/// A runtime value: heap index or null. Nulls remember the freeing store;
/// every value remembers the last load that produced it, so a crash names
/// the exact (use, free) pair.
struct Value {
  int32_t Obj = -1;
  const StoreStmt *NullOrigin = nullptr;
  const LoadStmt *ViaLoad = nullptr;

  bool isNull() const { return Obj < 0; }

  static Value object(int32_t Idx) {
    Value V;
    V.Obj = Idx;
    return V;
  }
  static Value nullFrom(const StoreStmt *Origin) {
    Value V;
    V.NullOrigin = Origin;
    return V;
  }
};

struct HeapObject {
  Clazz *Class = nullptr;
  std::map<const Field *, Value> Fields;
};

//===----------------------------------------------------------------------===//
// Tasks
//===----------------------------------------------------------------------===//

struct Frame {
  const Method *M = nullptr;
  const Code *C = nullptr;
  size_t PC = 0;
  Value This;
  std::map<const Local *, Value> Locals;
  /// The call that created this frame (for return-value delivery).
  const CallStmt *CallerSite = nullptr;
};

/// Effects applied when a task's activation completes (AsyncTask MHB).
enum class CompleteEffect : uint8_t { None, AsyncPreDone, AsyncBgDone };

struct Task {
  bool IsLooper = true;
  /// Which looper serializes this task (0 = UI); -1 for native tasks.
  int Looper = 0;
  std::vector<Frame> Stack;
  std::vector<int32_t> HeldLocks; // multiset: re-entrant monitors
  CompleteEffect OnComplete = CompleteEffect::None;
  size_t EffectIdx = 0; // AsyncInsts index for the effect
  bool Done = false;
};

//===----------------------------------------------------------------------===//
// Framework bookkeeping
//===----------------------------------------------------------------------===//

struct CompState {
  Clazz *Class = nullptr;
  int32_t Obj = -1;
  bool Created = false;
  bool Destroyed = false;
  bool Finished = false;
  bool Paused = false;
  /// The framework owes this component an onResume: set when it reaches
  /// the resumed state without one (launch/onCreate), cleared once
  /// onResume or onPause runs. Lets an overriding onResume fire even when
  /// the activity never overrides onPause.
  bool ResumePending = false;
  /// Set by the dynamic-only disableClicks API: models a UI interaction
  /// (hiding/disabling a view) whose happens-before effect static analysis
  /// cannot see — the §8.5 "Missing Happens-Before" FP category.
  bool ClicksDisabled = false;
};

struct ListenerReg {
  int32_t Obj = -1;
  Clazz *Class = nullptr;
  int CompIdx = -1; // owning component for UI gating, -1 = ungated
};

struct ConnInst {
  int32_t Conn = -1;
  int CompIdx = -1;
  bool Connected = false;
  bool Disconnected = false;
  bool Unbound = false;
};

struct ReceiverReg {
  int32_t Obj = -1;
  bool Unregistered = false;
};

struct AsyncInst {
  int32_t Task = -1;
  const Method *Pre = nullptr, *Bg = nullptr, *Progress = nullptr,
               *Post = nullptr;
  bool PreStarted = false, PreDone = false;
  bool BgStarted = false, BgDone = false;
  bool PostStarted = false;
  unsigned PendingProgress = 0;
};

struct PendingPost {
  const Method *Cb = nullptr;
  int32_t Recv = -1;
  int32_t Handler = -1; // for removeCallbacksAndMessages matching
  /// The looper the callback runs on: 0 = UI, else a per-
  /// BackgroundHandler-object looper.
  int Looper = 0;
  bool Consumed = false;
};

struct PendingThread {
  const Method *Run = nullptr;
  int32_t Recv = -1;
  bool Started = false;
};

/// One startable callback activation.
struct Activation {
  const Method *Cb = nullptr;
  int32_t Recv = -1;
  bool Native = false;
  /// Looper for non-native activations (0 = UI).
  int Looper = 0;
  /// Start-time bookkeeping.
  enum class Src : uint8_t {
    Component,
    Listener,
    Conn,
    Disconn,
    Receive,
    Post,
    AsyncPre,
    AsyncBg,
    AsyncProgress,
    AsyncPost,
    ThreadRun,
  } Source = Src::Component;
  size_t SrcIdx = 0;
};

/// Directed-search bias.
struct Bias {
  const LoadStmt *Use = nullptr;
  const StoreStmt *Free = nullptr;
  const std::set<const Method *> *FreeRelevant = nullptr;
  const std::set<const Method *> *UseRelevant = nullptr;
  /// Classes heap-connected to the use/free sites; directed runs only
  /// start activations on receivers of these classes, slicing a large app
  /// down to the cluster under investigation.
  const std::set<const Clazz *> *Cluster = nullptr;
};

//===----------------------------------------------------------------------===//
// One schedule run
//===----------------------------------------------------------------------===//

class Run {
public:
  Run(const Program &P, CodeCache &Codes, const ExploreOptions &Opts,
      uint64_t Seed, const Bias *B)
      : P(P), Codes(Codes), Opts(Opts), Rand(Seed), Directed(B) {}

  /// The activation sequence of the schedule just run.
  const std::vector<std::string> &trace() const { return TraceLog; }
  /// The crashing statement, empty when the schedule did not crash.
  const std::string &crashSite() const { return Crash; }

  /// Executes one schedule; returns the witnesses it produced.
  std::set<UafWitness> run() {
    initComponents();
    for (unsigned Step = 0; Step < Opts.MaxSteps && !Crashed; ++Step)
      if (!stepOnce())
        break;
    return std::move(Witnesses);
  }

private:
  const Program &P;
  CodeCache &Codes;
  const ExploreOptions &Opts;
  Rng Rand;
  const Bias *Directed;

  std::vector<HeapObject> Heap;
  std::vector<Task> Tasks;
  /// Per-looper running task: each looper runs one callback at a time,
  /// but distinct loopers (UI vs HandlerThreads) interleave like threads.
  std::map<int, size_t> RunningLooper;
  std::map<int32_t, std::pair<size_t, unsigned>> LockHolder; // obj→(task,n)

  std::vector<CompState> Components;
  std::vector<ListenerReg> Listeners;
  std::vector<ConnInst> Conns;
  std::vector<ReceiverReg> Receivers;
  std::vector<AsyncInst> AsyncInsts;
  std::vector<PendingPost> Posts;
  std::vector<PendingThread> PendingThreads;

  std::map<std::pair<const Method *, int32_t>, unsigned> ActivationCount;
  unsigned TotalActivations = 0;

  std::set<UafWitness> Witnesses;
  std::map<int32_t, Value> Stash; // per-receiver framework stash
  std::vector<std::string> TraceLog; // activation labels, start order
  std::string Crash;                 // crashing statement, rendered
  bool Crashed = false;
  bool FreeDone = false;

  //===--------------------------------------------------------------------===//
  // Setup
  //===--------------------------------------------------------------------===//

  int32_t allocate(Clazz *C) {
    Heap.push_back({C, {}});
    return static_cast<int32_t>(Heap.size() - 1);
  }

  /// Fragments-as-components mapping for the future-work extension.
  ClassKind effectiveKind(const Clazz *C) const {
    if (Opts.ModelFragments && C->kind() == ClassKind::Fragment)
      return ClassKind::Activity;
    return C->kind();
  }

  void initComponents() {
    for (const auto &C : P.classes()) {
      bool IsFragment =
          Opts.ModelFragments && C->kind() == ClassKind::Fragment;
      if (!P.isManifestComponent(C.get()) && !IsFragment)
        continue;
      CompState State;
      State.Class = C.get();
      State.Obj = allocate(C.get());
      // A component without onCreate is born created; a plain receiver
      // has no creation lifecycle at all.
      if (!C->findMethod("onCreate") ||
          effectiveKind(C.get()) == ClassKind::Receiver)
        State.Created = true;
      State.ResumePending = State.Created;
      Components.push_back(State);
    }
  }

  //===--------------------------------------------------------------------===//
  // Scheduling
  //===--------------------------------------------------------------------===//

  struct Choice {
    enum class K : uint8_t { StepTask, Start } Kind = K::StepTask;
    size_t TaskIdx = 0;
    Activation Act;
  };

  bool taskSteppable(size_t Idx) const {
    const Task &T = Tasks[Idx];
    if (T.Done || T.Stack.empty())
      return false;
    const Frame &F = T.Stack.back();
    if (F.PC >= F.C->size())
      return true; // frame epilogue is always possible
    const Instr &I = (*F.C)[F.PC];
    if (I.Kind != Instr::Op::SyncEnter)
      return true;
    // Blocked when another task holds the monitor.
    const auto *Sync = cast<SyncStmt>(I.S);
    Value L = readLocal(F, Sync->lock());
    if (L.isNull())
      return true; // stepping will raise the NPE
    auto It = LockHolder.find(L.Obj);
    return It == LockHolder.end() || It->second.first == Idx;
  }

  unsigned activationsOf(const Method *Cb, int32_t Recv) const {
    auto It = ActivationCount.find({Cb, Recv});
    return It == ActivationCount.end() ? 0 : It->second;
  }

  bool underCaps(const Method *Cb, int32_t Recv) const {
    return TotalActivations < Opts.MaxTotalActivations &&
           activationsOf(Cb, Recv) < Opts.MaxActivationsPerCallback;
  }

  void collectComponentActivations(std::vector<Activation> &Out) {
    for (size_t CI = 0; CI < Components.size(); ++CI) {
      CompState &C = Components[CI];
      for (const auto &M : C.Class->methods()) {
        CallbackKind K =
            android::classifyCallback(effectiveKind(C.Class), M->name());
        if (K == CallbackKind::None)
          continue;
        if (!componentCallbackAvailable(C, K, M->name()))
          continue;
        if (!underCaps(M.get(), C.Obj))
          continue;
        Activation A;
        A.Cb = M.get();
        A.Recv = C.Obj;
        A.Source = Activation::Src::Component;
        A.SrcIdx = CI;
        Out.push_back(A);
      }
    }
  }

  bool componentCallbackAvailable(const CompState &C, CallbackKind K,
                                  const std::string &Name) const {
    if (Name == "onCreate")
      return !C.Created;
    if (!C.Created || C.Destroyed)
      return false;
    if (Name == "onDestroy")
      return true; // destruction can follow even finish()
    if (C.Finished)
      return false;
    if (Name == "onPause")
      return !C.Paused;
    if (Name == "onResume")
      return C.Paused || C.ResumePending;
    if (K == CallbackKind::Ui) // UI input needs a resumed, enabled view
      return !C.Paused && !C.ClicksDisabled;
    return true; // other lifecycle + system events fire even when paused
  }

  void collectActivations(std::vector<Activation> &Out) {
    collectComponentActivations(Out);

    for (size_t LI = 0; LI < Listeners.size(); ++LI) {
      const ListenerReg &L = Listeners[LI];
      const CompState *Comp =
          L.CompIdx >= 0 ? &Components[L.CompIdx] : nullptr;
      for (const auto &M : L.Class->methods()) {
        CallbackKind K = android::classifyCallback(L.Class->kind(),
                                                   M->name());
        if (K == CallbackKind::None)
          continue;
        if (Comp) {
          if (!Comp->Created || Comp->Destroyed || Comp->Finished)
            continue;
          if (K == CallbackKind::Ui &&
              (Comp->Paused || Comp->ClicksDisabled))
            continue;
        }
        if (!underCaps(M.get(), L.Obj))
          continue;
        Out.push_back({M.get(), L.Obj, false, 0, Activation::Src::Listener, LI});
      }
    }

    for (size_t CI = 0; CI < Conns.size(); ++CI) {
      const ConnInst &C = Conns[CI];
      if (C.Unbound)
        continue;
      Clazz *Class = Heap[C.Conn].Class;
      if (!C.Connected) {
        if (Method *M = Class->findMethod("onServiceConnected"))
          if (underCaps(M, C.Conn))
            Out.push_back({M, C.Conn, false, 0, Activation::Src::Conn, CI});
      } else if (!C.Disconnected) {
        if (Method *M = Class->findMethod("onServiceDisconnected"))
          if (underCaps(M, C.Conn))
            Out.push_back({M, C.Conn, false, 0, Activation::Src::Disconn, CI});
      }
    }

    for (size_t RI = 0; RI < Receivers.size(); ++RI) {
      const ReceiverReg &R = Receivers[RI];
      if (R.Unregistered)
        continue;
      if (Method *M = Heap[R.Obj].Class->findMethod("onReceive"))
        if (underCaps(M, R.Obj))
          Out.push_back({M, R.Obj, false, 0, Activation::Src::Receive, RI});
    }

    for (size_t PI = 0; PI < Posts.size(); ++PI) {
      const PendingPost &PP = Posts[PI];
      if (PP.Consumed)
        continue;
      Activation A{PP.Cb, PP.Recv, false, PP.Looper,
                   Activation::Src::Post, PI};
      Out.push_back(A);
    }

    for (size_t AI = 0; AI < AsyncInsts.size(); ++AI) {
      const AsyncInst &A = AsyncInsts[AI];
      if (A.Pre && !A.PreStarted)
        Out.push_back(
            {A.Pre, A.Task, false, 0, Activation::Src::AsyncPre, AI});
      if (A.Bg && !A.BgStarted && A.PreDone)
        Out.push_back({A.Bg, A.Task, true, 0, Activation::Src::AsyncBg, AI});
      if (A.Progress && A.PendingProgress > 0)
        Out.push_back({A.Progress, A.Task, false, 0,
                       Activation::Src::AsyncProgress, AI});
      if (A.Post && !A.PostStarted && A.BgDone)
        Out.push_back(
            {A.Post, A.Task, false, 0, Activation::Src::AsyncPost, AI});
    }

    for (size_t TI = 0; TI < PendingThreads.size(); ++TI) {
      const PendingThread &T = PendingThreads[TI];
      if (T.Started)
        continue;
      Out.push_back({T.Run, T.Recv, true, 0, Activation::Src::ThreadRun, TI});
    }
  }

  uint64_t choiceWeight(const Choice &C) const {
    if (!Directed)
      return 1;
    if (C.Kind == Choice::K::StepTask)
      return 3; // finish started work so dependents unblock
    const Method *Cb = C.Act.Cb;
    if (!FreeDone && Directed->FreeRelevant->count(Cb))
      return 12;
    if (FreeDone && Directed->UseRelevant->count(Cb))
      return 12;
    return 1;
  }

  bool stepOnce() {
    std::vector<Choice> Choices;
    // Step items.
    for (size_t I = 0; I < Tasks.size(); ++I) {
      if (!taskSteppable(I))
        continue;
      Choice C;
      C.Kind = Choice::K::StepTask;
      C.TaskIdx = I;
      Choices.push_back(C);
    }
    // Start items.
    std::vector<Activation> Acts;
    collectActivations(Acts);
    for (const Activation &A : Acts) {
      if (!A.Native && RunningLooper.count(A.Looper))
        continue; // each looper runs callbacks one at a time
      if (TotalActivations >= Opts.MaxTotalActivations)
        continue;
      if (Directed && Directed->Cluster &&
          !Directed->Cluster->count(Heap[A.Recv].Class))
        continue; // directed mode: stay inside the relevant cluster
      Choice C;
      C.Kind = Choice::K::Start;
      C.Act = A;
      Choices.push_back(C);
    }
    if (Choices.empty())
      return false;

    // Weighted pick.
    uint64_t Total = 0;
    for (const Choice &C : Choices)
      Total += choiceWeight(C);
    uint64_t Ball = Rand.below(Total);
    size_t Picked = 0;
    for (size_t I = 0; I < Choices.size(); ++I) {
      uint64_t W = choiceWeight(Choices[I]);
      if (Ball < W) {
        Picked = I;
        break;
      }
      Ball -= W;
    }

    const Choice &C = Choices[Picked];
    if (C.Kind == Choice::K::StepTask)
      stepTask(C.TaskIdx);
    else
      startActivation(C.Act);
    return true;
  }

  void startActivation(const Activation &A) {
    ++TotalActivations;
    ++ActivationCount[{A.Cb, A.Recv}];
    TraceLog.push_back(A.Cb->qualifiedName() +
                       (A.Native ? " [native]" : ""));

    CompleteEffect Effect = CompleteEffect::None;
    size_t EffectIdx = 0;
    switch (A.Source) {
    case Activation::Src::Component: {
      CompState &C = Components[A.SrcIdx];
      const std::string &Name = A.Cb->name();
      if (Name == "onCreate") {
        C.Created = true;
        C.ResumePending = true;
      } else if (Name == "onDestroy") {
        C.Destroyed = true;
      } else if (Name == "onPause") {
        C.Paused = true;
        C.ResumePending = false;
      } else if (Name == "onResume") {
        C.Paused = false;
        C.ResumePending = false;
      }
      break;
    }
    case Activation::Src::Conn:
      Conns[A.SrcIdx].Connected = true;
      break;
    case Activation::Src::Disconn:
      Conns[A.SrcIdx].Disconnected = true;
      break;
    case Activation::Src::Post:
      Posts[A.SrcIdx].Consumed = true;
      break;
    case Activation::Src::AsyncPre:
      AsyncInsts[A.SrcIdx].PreStarted = true;
      Effect = CompleteEffect::AsyncPreDone;
      EffectIdx = A.SrcIdx;
      break;
    case Activation::Src::AsyncBg:
      AsyncInsts[A.SrcIdx].BgStarted = true;
      Effect = CompleteEffect::AsyncBgDone;
      EffectIdx = A.SrcIdx;
      break;
    case Activation::Src::AsyncProgress:
      --AsyncInsts[A.SrcIdx].PendingProgress;
      break;
    case Activation::Src::AsyncPost:
      AsyncInsts[A.SrcIdx].PostStarted = true;
      break;
    case Activation::Src::ThreadRun:
      PendingThreads[A.SrcIdx].Started = true;
      break;
    case Activation::Src::Listener:
    case Activation::Src::Receive:
      break;
    }

    bool IsLooper = !A.Native;
    Task T;
    T.IsLooper = IsLooper;
    T.Looper = IsLooper ? A.Looper : -1;
    T.OnComplete = Effect;
    T.EffectIdx = EffectIdx;
    Frame F;
    F.M = A.Cb;
    F.C = &Codes.codeFor(A.Cb);
    F.This = Value::object(A.Recv);
    T.Stack.push_back(std::move(F));
    Tasks.push_back(std::move(T));
    if (IsLooper)
      RunningLooper[A.Looper] = Tasks.size() - 1;
  }

  //===--------------------------------------------------------------------===//
  // Execution
  //===--------------------------------------------------------------------===//

  Value readLocal(const Frame &F, const Local *L) const {
    if (L->isThis())
      return F.This;
    auto It = F.Locals.find(L);
    return It == F.Locals.end() ? Value() : It->second;
  }

  void writeLocal(Frame &F, const Local *L, Value V) { F.Locals[L] = V; }

  void raiseNpe(const Value &V, const Stmt &At) {
    Crashed = true;
    Crash = stmtToString(At);
    if (V.ViaLoad && V.NullOrigin)
      Witnesses.insert({V.ViaLoad, V.NullOrigin});
  }

  void finishTask(size_t Idx) {
    Task &T = Tasks[Idx];
    T.Done = true;
    // Release any monitors still recorded (robustness; balanced
    // enter/exit normally clears them).
    for (int32_t Obj : T.HeldLocks)
      releaseLock(Obj, Idx);
    T.HeldLocks.clear();
    switch (T.OnComplete) {
    case CompleteEffect::AsyncPreDone:
      AsyncInsts[T.EffectIdx].PreDone = true;
      break;
    case CompleteEffect::AsyncBgDone:
      AsyncInsts[T.EffectIdx].BgDone = true;
      break;
    case CompleteEffect::None:
      break;
    }
    if (T.IsLooper) {
      auto It = RunningLooper.find(T.Looper);
      if (It != RunningLooper.end() && It->second == Idx)
        RunningLooper.erase(It);
    }
  }

  void acquireLock(int32_t Obj, size_t TaskIdx) {
    auto [It, Inserted] = LockHolder.emplace(Obj, std::make_pair(TaskIdx, 1u));
    if (!Inserted) {
      assert(It->second.first == TaskIdx && "lock stolen");
      ++It->second.second;
    }
  }

  void releaseLock(int32_t Obj, size_t TaskIdx) {
    auto It = LockHolder.find(Obj);
    if (It == LockHolder.end() || It->second.first != TaskIdx)
      return;
    if (--It->second.second == 0)
      LockHolder.erase(It);
  }

  void popFrame(size_t TaskIdx, Value ReturnValue) {
    Task &T = Tasks[TaskIdx];
    const CallStmt *Site = T.Stack.back().CallerSite;
    T.Stack.pop_back();
    if (T.Stack.empty()) {
      finishTask(TaskIdx);
      return;
    }
    if (Site && Site->dst())
      writeLocal(T.Stack.back(), Site->dst(), ReturnValue);
  }

  void stepTask(size_t TaskIdx) {
    Task &T = Tasks[TaskIdx];
    Frame &F = T.Stack.back();
    if (F.PC >= F.C->size()) {
      popFrame(TaskIdx, Value());
      return;
    }
    const Instr &I = (*F.C)[F.PC];
    switch (I.Kind) {
    case Instr::Op::Jump:
      F.PC = I.Target;
      return;
    case Instr::Op::Branch: {
      const auto *If = cast<IfStmt>(I.S);
      bool TakeThen = false;
      switch (If->test()) {
      case IfStmt::TestKind::NotNull:
        TakeThen = !readLocal(F, If->cond()).isNull();
        break;
      case IfStmt::TestKind::IsNull:
        TakeThen = readLocal(F, If->cond()).isNull();
        break;
      case IfStmt::TestKind::Unknown:
        TakeThen = Rand.chance(1, 2);
        break;
      }
      F.PC = TakeThen ? F.PC + 1 : I.Target;
      return;
    }
    case Instr::Op::SyncEnter: {
      const auto *Sync = cast<SyncStmt>(I.S);
      Value L = readLocal(F, Sync->lock());
      if (L.isNull()) {
        raiseNpe(L, *Sync);
        return;
      }
      acquireLock(L.Obj, TaskIdx);
      T.HeldLocks.push_back(L.Obj);
      ++F.PC;
      return;
    }
    case Instr::Op::SyncExit: {
      const auto *Sync = cast<SyncStmt>(I.S);
      Value L = readLocal(F, Sync->lock());
      if (!L.isNull()) {
        releaseLock(L.Obj, TaskIdx);
        for (auto It = T.HeldLocks.rbegin(); It != T.HeldLocks.rend(); ++It)
          if (*It == L.Obj) {
            T.HeldLocks.erase(std::next(It).base());
            break;
          }
      }
      ++F.PC;
      return;
    }
    case Instr::Op::Exec:
      execStmt(TaskIdx, *I.S);
      return;
    }
  }

  void execStmt(size_t TaskIdx, const Stmt &S) {
    Task &T = Tasks[TaskIdx];
    Frame &F = T.Stack.back();
    switch (S.kind()) {
    case Stmt::Kind::New: {
      const auto *New = cast<NewStmt>(&S);
      writeLocal(F, New->dst(), Value::object(allocate(New->allocClass())));
      ++F.PC;
      return;
    }
    case Stmt::Kind::Load: {
      const auto *Load = cast<LoadStmt>(&S);
      Value B = readLocal(F, Load->base());
      if (B.isNull()) {
        raiseNpe(B, *Load);
        return;
      }
      Value V;
      auto It = Heap[B.Obj].Fields.find(Load->field());
      if (It != Heap[B.Obj].Fields.end())
        V = It->second;
      V.ViaLoad = Load;
      writeLocal(F, Load->dst(), V);
      ++F.PC;
      return;
    }
    case Stmt::Kind::Store: {
      const auto *Store = cast<StoreStmt>(&S);
      Value B = readLocal(F, Store->base());
      if (B.isNull()) {
        raiseNpe(B, *Store);
        return;
      }
      Value V = Store->src() ? readLocal(F, Store->src())
                             : Value::nullFrom(Store);
      Heap[B.Obj].Fields[Store->field()] = V;
      if (Directed && Store == Directed->Free && V.isNull())
        FreeDone = true;
      ++F.PC;
      return;
    }
    case Stmt::Kind::Copy: {
      const auto *Copy = cast<CopyStmt>(&S);
      writeLocal(F, Copy->dst(), readLocal(F, Copy->src()));
      ++F.PC;
      return;
    }
    case Stmt::Kind::Return: {
      const auto *Ret = cast<ReturnStmt>(&S);
      Value V = Ret->src() ? readLocal(F, Ret->src()) : Value();
      popFrame(TaskIdx, V);
      return;
    }
    case Stmt::Kind::Call:
      execCall(TaskIdx, *cast<CallStmt>(&S));
      return;
    case Stmt::Kind::If:
    case Stmt::Kind::Sync:
      assert(false && "structured statements are linearized away");
      ++F.PC;
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Calls and dynamic framework semantics
  //===--------------------------------------------------------------------===//

  int componentIndexOf(int32_t Obj) const {
    for (size_t I = 0; I < Components.size(); ++I)
      if (Components[I].Obj == Obj)
        return static_cast<int>(I);
    return -1;
  }

  void execCall(size_t TaskIdx, const CallStmt &Call) {
    Task &T = Tasks[TaskIdx];
    Frame &F = T.Stack.back();
    Value R = readLocal(F, Call.recv());
    if (R.isNull()) {
      raiseNpe(R, Call);
      return;
    }
    if (handleFrameworkCall(F, Call, R)) {
      ++F.PC;
      return;
    }
    Method *Target = Heap[R.Obj].Class->findMethod(Call.callee());
    if (!Target) {
      // Unmodeled framework method: result unknown (null without UAF
      // provenance, so a crash on it is not misattributed).
      if (Call.dst())
        writeLocal(F, Call.dst(), Value());
      ++F.PC;
      return;
    }
    ++F.PC; // resume after the call on return
    Frame Callee;
    Callee.M = Target;
    Callee.C = &Codes.codeFor(Target);
    Callee.This = R;
    Callee.CallerSite = &Call;
    size_t N = std::min(Call.args().size(), Target->params().size());
    for (size_t I = 0; I < N; ++I)
      Callee.Locals[Target->params()[I]] = readLocal(F, Call.args()[I]);
    T.Stack.push_back(std::move(Callee));
  }

  /// Interprets Android framework APIs by their dynamic receiver/argument
  /// classes. Returns false for ordinary application calls.
  bool handleFrameworkCall(Frame &F, const CallStmt &Call, Value R) {
    const std::string &Name = Call.callee();
    Clazz *RecvClass = Heap[R.Obj].Class;
    Value A0 = Call.args().empty() ? Value()
                                   : readLocal(F, Call.args()[0]);
    Clazz *Arg0Class = A0.isNull() ? nullptr : Heap[A0.Obj].Class;

    auto Arg0Is = [&](ClassKind K) {
      return Arg0Class && Arg0Class->kind() == K;
    };
    auto RecvIs = [&](ClassKind K) { return RecvClass->kind() == K; };

    if (Name == "bindService" && Arg0Is(ClassKind::ServiceConnection)) {
      // A connection with no onServiceConnected body still connects — the
      // framework transition is not contingent on the app observing it.
      bool AutoConnected = Arg0Class->findMethod("onServiceConnected") ==
                           nullptr;
      Conns.push_back(
          {A0.Obj, componentIndexOf(R.Obj), AutoConnected, false, false});
      return true;
    }
    if (Name == "unbindService") {
      int Comp = componentIndexOf(R.Obj);
      for (ConnInst &C : Conns) {
        if (Arg0Class && C.Conn != A0.Obj)
          continue;
        if (!Arg0Class && C.CompIdx != Comp)
          continue;
        C.Unbound = true;
      }
      return true;
    }
    if (Name == "registerReceiver" && Arg0Is(ClassKind::Receiver)) {
      Receivers.push_back({A0.Obj, false});
      return true;
    }
    if (Name == "unregisterReceiver") {
      for (ReceiverReg &Reg : Receivers)
        if (!Arg0Class || Reg.Obj == A0.Obj)
          Reg.Unregistered = true;
      return true;
    }
    if ((Name == "setOnClickListener" || Name == "setOnLongClickListener" ||
         Name == "setOnTouchListener" || Name == "setOnItemClickListener" ||
         Name == "requestLocationUpdates" || Name == "registerListener") &&
        Arg0Is(ClassKind::Listener)) {
      Listeners.push_back({A0.Obj, Arg0Class, componentIndexOf(R.Obj)});
      return true;
    }
    if ((Name == "post" || Name == "postDelayed" ||
         Name == "runOnUiThread") &&
        Arg0Is(ClassKind::Runnable)) {
      // A BackgroundHandler routes the runnable to its own looper; every
      // other receiver (UI handler, view, activity) targets the UI one.
      int Looper = RecvIs(ClassKind::BackgroundHandler) ? R.Obj + 1 : 0;
      if (Method *RunM = Arg0Class->findMethod("run"))
        Posts.push_back({RunM, A0.Obj, R.Obj, Looper, false});
      return true;
    }
    if ((Name == "sendMessage" || Name == "sendEmptyMessage" ||
         Name == "sendMessageDelayed") &&
        (RecvIs(ClassKind::Handler) ||
         RecvIs(ClassKind::BackgroundHandler))) {
      int Looper = RecvIs(ClassKind::BackgroundHandler) ? R.Obj + 1 : 0;
      if (Method *HM = RecvClass->findMethod("handleMessage"))
        Posts.push_back({HM, R.Obj, R.Obj, Looper, false});
      return true;
    }
    if (Name == "removeCallbacksAndMessages" &&
        (RecvIs(ClassKind::Handler) ||
         RecvIs(ClassKind::BackgroundHandler))) {
      for (PendingPost &PP : Posts)
        if (PP.Handler == R.Obj)
          PP.Consumed = true;
      return true;
    }
    if (Name == "execute" && RecvIs(ClassKind::AsyncTask)) {
      AsyncInst A;
      A.Task = R.Obj;
      A.Pre = RecvClass->findMethod("onPreExecute");
      A.Bg = RecvClass->findMethod("doInBackground");
      A.Progress = RecvClass->findMethod("onProgressUpdate");
      A.Post = RecvClass->findMethod("onPostExecute");
      A.PreDone = A.Pre == nullptr;
      A.BgDone = A.Bg == nullptr;
      AsyncInsts.push_back(A);
      return true;
    }
    if (Name == "publishProgress" && RecvIs(ClassKind::AsyncTask)) {
      for (AsyncInst &A : AsyncInsts)
        if (A.Task == R.Obj)
          ++A.PendingProgress;
      return true;
    }
    if (Name == "start" && RecvIs(ClassKind::ThreadClass)) {
      if (Method *RunM = RecvClass->findMethod("run"))
        PendingThreads.push_back({RunM, R.Obj, false});
      return true;
    }
    if (Name == "finish" && RecvIs(ClassKind::Activity)) {
      int Comp = componentIndexOf(R.Obj);
      if (Comp >= 0)
        Components[Comp].Finished = true;
      return true;
    }
    // Dynamic-only APIs, invisible to the static analyses by design:
    //  * disableClicks models a view being hidden/disabled — the "Missing
    //    Happens-Before" FP category of §8.5.
    //  * stash/fetchStash model an object round-tripping through the
    //    framework (the IBinder pattern of §8.6) — the static call graph
    //    loses it, the runtime does not.
    if (Name == "disableClicks" && RecvIs(ClassKind::Activity)) {
      int Comp = componentIndexOf(R.Obj);
      if (Comp >= 0)
        Components[Comp].ClicksDisabled = true;
      return true;
    }
    if (Name == "stash") {
      Stash[R.Obj] = A0;
      return true;
    }
    if (Name == "fetchStash") {
      if (Call.dst()) {
        auto It = Stash.find(R.Obj);
        writeLocal(F, Call.dst(), It == Stash.end() ? Value() : It->second);
      }
      return true;
    }
    return false;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// ScheduleExplorer
//===----------------------------------------------------------------------===//

struct ScheduleExplorer::Impl {
  const Program &P;
  ExploreOptions Opts;
  CodeCache Codes;
  android::ApiIndex Apis;
  /// Cached "callbacks from which method X is syntactically reachable".
  std::map<const Method *, std::set<const Method *>> RelevanceCache;
  /// Undirected class-connectivity graph (field types, allocations,
  /// inheritance) for directed-run slicing.
  std::map<const Clazz *, std::set<const Clazz *>> ClassGraph;

  Impl(const Program &P, ExploreOptions Opts)
      : P(P), Opts(Opts), Apis(P) {
    buildClassGraph();
  }

  void buildClassGraph() {
    auto Link = [&](const Clazz *A, const Clazz *B) {
      if (!A || !B || A == B)
        return;
      ClassGraph[A].insert(B);
      ClassGraph[B].insert(A);
    };
    for (const auto &C : P.classes()) {
      Link(C.get(), C->superClass());
      Link(C.get(), C->outerClass());
      for (const auto &F : C->fields())
        Link(C.get(), F->declaredType());
      for (const auto &M : C->methods())
        forEachStmt(*M, [&](const Stmt &S) {
          if (const auto *New = dyn_cast<NewStmt>(&S))
            Link(C.get(), New->allocClass());
        });
    }
  }

  std::set<const Clazz *> clusterOf(const Clazz *A, const Clazz *B) {
    std::set<const Clazz *> Cluster;
    std::vector<const Clazz *> Pending{A, B};
    while (!Pending.empty()) {
      const Clazz *C = Pending.back();
      Pending.pop_back();
      if (!C || !Cluster.insert(C).second)
        continue;
      auto It = ClassGraph.find(C);
      if (It == ClassGraph.end())
        continue;
      for (const Clazz *N : It->second)
        Pending.push_back(N);
    }
    return Cluster;
  }

  const std::set<const Method *> &relevantRoots(const Method *Target) {
    auto It = RelevanceCache.find(Target);
    if (It != RelevanceCache.end())
      return It->second;
    std::set<const Method *> Roots;
    for (const auto &C : P.classes())
      for (const auto &M : C->methods()) {
        for (Method *Reached :
             android::collectReachableMethods(M.get(), Apis))
          if (Reached == Target) {
            Roots.insert(M.get());
            break;
          }
      }
    return RelevanceCache.emplace(Target, std::move(Roots)).first->second;
  }
};

ScheduleExplorer::ScheduleExplorer(const Program &P, ExploreOptions Opts)
    : I(std::make_unique<Impl>(P, Opts)) {}

ScheduleExplorer::ScheduleExplorer(const Program &P)
    : I(std::make_unique<Impl>(P, ExploreOptions())) {}

ScheduleExplorer::~ScheduleExplorer() = default;

std::set<UafWitness> ScheduleExplorer::explore() {
  std::set<UafWitness> All;
  Rng Seeder(I->Opts.Seed);
  for (unsigned S = 0; S < I->Opts.Schedules; ++S) {
    if (I->Opts.Deadline)
      I->Opts.Deadline->check("interp");
    Run R(I->P, I->Codes, I->Opts, Seeder.next(), nullptr);
    std::set<UafWitness> Found = R.run();
    All.insert(Found.begin(), Found.end());
  }
  return All;
}

bool ScheduleExplorer::tryWitness(const LoadStmt *Use, const StoreStmt *Free,
                                  unsigned Trials,
                                  WitnessSchedule *ScheduleOut) {
  Bias B;
  B.Use = Use;
  B.Free = Free;
  B.FreeRelevant = &I->relevantRoots(Free->parentMethod());
  B.UseRelevant = &I->relevantRoots(Use->parentMethod());
  std::set<const Clazz *> Cluster = I->clusterOf(
      Use->parentMethod()->parent(), Free->parentMethod()->parent());
  B.Cluster = &Cluster;

  Rng Seeder(I->Opts.Seed ^ (uint64_t(Use->id()) << 32 | Free->id()));
  UafWitness Wanted{Use, Free};
  for (unsigned T = 0; T < Trials; ++T) {
    if (I->Opts.Deadline)
      I->Opts.Deadline->check("interp");
    Run R(I->P, I->Codes, I->Opts, Seeder.next(), &B);
    std::set<UafWitness> Found = R.run();
    if (Found.count(Wanted)) {
      if (ScheduleOut) {
        ScheduleOut->Activations = R.trace();
        ScheduleOut->CrashSite = R.crashSite();
      }
      return true;
    }
  }
  return false;
}
