//===- interp/Interp.h - Concrete schedule exploration ----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete interpreter for AIR programs under the Android concurrency
/// model, used as the harmfulness oracle (§7): the paper's authors
/// validated warnings by manually constructing schedules that trigger a
/// NullPointerException; this module automates that search.
///
/// Semantics: manifest components are instantiated; their entry callbacks
/// fire under lifecycle legality (onCreate first, onDestroy last, UI
/// callbacks only while resumed and not finished, pause/resume alternate);
/// posted callbacks become available when their post executes; looper
/// callbacks run atomically on the single UI looper; native threads
/// (Thread.run, doInBackground) interleave statement-by-statement and
/// respect monitors; AsyncTask callbacks follow the framework order.
/// Framework APIs are interpreted by their *dynamic* receiver/argument
/// classes — deliberately more complete than the static analyses, so the
/// interpreter can witness bugs the detector misses (Table 2).
///
/// Null values carry provenance (the freeing store) and loads stamp the
/// values they produce, so a crash identifies the exact (use, free) pair —
/// directly comparable to detector warnings.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_INTERP_INTERP_H
#define NADROID_INTERP_INTERP_H

#include "ir/Stmt.h"
#include "support/Deadline.h"
#include "support/Rng.h"

#include <set>

namespace nadroid::interp {

/// A dynamically observed use-after-free: dereferencing a null that load
/// \p Use read after store \p Free wrote it.
struct UafWitness {
  const ir::LoadStmt *Use = nullptr;
  const ir::StoreStmt *Free = nullptr;

  friend bool operator<(const UafWitness &A, const UafWitness &B) {
    if (A.Use != B.Use)
      return A.Use->id() < B.Use->id();
    return A.Free->id() < B.Free->id();
  }
  friend bool operator==(const UafWitness &A, const UafWitness &B) {
    return A.Use == B.Use && A.Free == B.Free;
  }
};

/// Exploration bounds. Defaults suit corpus-sized apps.
struct ExploreOptions {
  uint64_t Seed = 1;
  /// Random schedules per explore() call.
  unsigned Schedules = 200;
  /// Statement-step budget per schedule.
  unsigned MaxSteps = 20000;
  /// How often one repeatable callback may fire per schedule.
  unsigned MaxActivationsPerCallback = 3;
  /// Global activation budget per schedule (bounds re-posting loops).
  unsigned MaxTotalActivations = 64;
  /// Future-work extension (§8.1/§8.7): treat Fragment classes as
  /// always-attached components so their callbacks fire. Off by default —
  /// the paper's prototype does not model Fragments.
  bool ModelFragments = false;
  /// Optional cooperative deadline (not owned), polled between schedules
  /// in explore() and between trials in tryWitness(); expiry throws
  /// DeadlineExceeded with the witnesses found so far discarded.
  const support::Deadline *Deadline = nullptr;
};

/// The callback activation sequence of a crashing schedule — the §7
/// "construct an execution" aid, automated: replaying these activations
/// in order (native threads interleaving freely) reproduces the NPE.
struct WitnessSchedule {
  /// Human-readable activation labels in start order, ending at the
  /// crash, e.g. "onCreate@MainAct", "run@Killer [native]".
  std::vector<std::string> Activations;
  /// The crashing statement rendered as text.
  std::string CrashSite;
};

/// Explores schedules of one program.
class ScheduleExplorer {
public:
  ScheduleExplorer(const ir::Program &P, ExploreOptions Opts);
  explicit ScheduleExplorer(const ir::Program &P);
  ~ScheduleExplorer();

  /// Runs Opts.Schedules random schedules; returns every distinct UAF
  /// witness observed.
  std::set<UafWitness> explore();

  /// Directed search: biases \p Trials schedules toward executing \p Free
  /// before \p Use. Returns true when the exact (use, free) NPE fires;
  /// \p ScheduleOut (when non-null) receives the crashing activation
  /// sequence.
  bool tryWitness(const ir::LoadStmt *Use, const ir::StoreStmt *Free,
                  unsigned Trials, WitnessSchedule *ScheduleOut = nullptr);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace nadroid::interp

#endif // NADROID_INTERP_INTERP_H
