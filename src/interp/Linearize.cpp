//===- interp/Linearize.cpp - Flatten method bodies ----------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "interp/Linearize.h"

using namespace nadroid;
using namespace nadroid::interp;
using namespace nadroid::ir;

namespace {

void flatten(const Block &B, Code &Out) {
  for (const auto &SPtr : B.stmts()) {
    const Stmt &S = *SPtr;
    switch (S.kind()) {
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      size_t BranchIdx = Out.size();
      Out.push_back({Instr::Op::Branch, If, 0});
      flatten(If->thenBlock(), Out);
      size_t JumpIdx = Out.size();
      Out.push_back({Instr::Op::Jump, nullptr, 0});
      Out[BranchIdx].Target = Out.size(); // else starts here
      flatten(If->elseBlock(), Out);
      Out[JumpIdx].Target = Out.size(); // join point
      break;
    }
    case Stmt::Kind::Sync: {
      const auto *Sync = cast<SyncStmt>(&S);
      Out.push_back({Instr::Op::SyncEnter, Sync, 0});
      flatten(Sync->body(), Out);
      Out.push_back({Instr::Op::SyncExit, Sync, 0});
      break;
    }
    default:
      Out.push_back({Instr::Op::Exec, &S, 0});
      break;
    }
  }
}

} // namespace

Code interp::linearize(const Method &M) {
  Code Out;
  flatten(M.body(), Out);
  return Out;
}

const Code &CodeCache::codeFor(const Method *M) {
  auto It = Cache.find(M);
  if (It != Cache.end())
    return It->second;
  return Cache.emplace(M, linearize(*M)).first->second;
}
