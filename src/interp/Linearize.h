//===- interp/Linearize.h - Flatten method bodies for stepping --*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule-exploring interpreter steps native threads one statement
/// at a time, so structured bodies are flattened into instruction vectors
/// with explicit jump targets:
///
///   Exec      — run a straight-line statement
///   Branch    — evaluate an IfStmt; fall through into then, jump to the
///               else offset otherwise (then ends with a Jump past else)
///   Jump      — unconditional
///   SyncEnter — acquire the SyncStmt's lock (may block a native task)
///   SyncExit  — release it
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_INTERP_LINEARIZE_H
#define NADROID_INTERP_LINEARIZE_H

#include "ir/Stmt.h"

#include <map>
#include <vector>

namespace nadroid::interp {

/// One flattened instruction.
struct Instr {
  enum class Op : uint8_t { Exec, Branch, Jump, SyncEnter, SyncExit };

  Op Kind = Op::Exec;
  /// The originating statement (null only for Jump).
  const ir::Stmt *S = nullptr;
  /// Branch: index of the else-block start. Jump: the target index.
  size_t Target = 0;
};

/// A method's flattened body.
using Code = std::vector<Instr>;

/// Flattens \p M (cached per program by the interpreter).
Code linearize(const ir::Method &M);

/// Lazy cache of linearized bodies.
class CodeCache {
public:
  const Code &codeFor(const ir::Method *M);

private:
  std::map<const ir::Method *, Code> Cache;
};

} // namespace nadroid::interp

#endif // NADROID_INTERP_LINEARIZE_H
