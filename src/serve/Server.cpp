//===- serve/Server.cpp - The nadroid --serve daemon ----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "frontend/Frontend.h"
#include "frontend/Incremental.h"
#include "report/Json.h"
#include "report/Lint.h"
#include "report/Nadroid.h"
#include "serve/SocketIo.h"

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

using namespace nadroid;
using namespace nadroid::serve;

/// A request line is a verb, a path, and a handful of flags; anything
/// growing past this without a newline is not a client.
static constexpr size_t MaxRequestLine = 1 << 20;

/// App name is the file stem, exactly as frontend::parseProgramFile
/// derives it — the daemon parses from bytes it already read, so it
/// mirrors the derivation.
static std::string stemOf(const std::string &Path) {
  std::string Stem = Path;
  if (size_t Slash = Stem.find_last_of('/'); Slash != std::string::npos)
    Stem = Stem.substr(Slash + 1);
  if (size_t Ext = Stem.find_last_of('.'); Ext != std::string::npos)
    Stem = Stem.substr(0, Ext);
  return Stem;
}

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Pool(Opts.Jobs),
      Sessions(Opts.MaxSessions), L2(Opts.CacheDir) {}

Server::~Server() {
  requestShutdown();
  // The pool outlives this body (member destruction comes after), so
  // queued connection tasks still run; wait for every one to retire its
  // fd before the members they use go away.
  std::unique_lock<std::mutex> L(ConnMu);
  ConnCv.wait(L, [this] { return Conns.empty(); });
  L.unlock();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
  }
}

Response Server::handle(const std::string &Line) {
  Requests.fetch_add(1);
  Request Q;
  std::string Error;
  if (!parseRequest(Line, Q, Error)) {
    Malformed.fetch_add(1);
    Response R;
    R.Ok = false;
    R.Exit = 2;
    R.Err = Error + "\n";
    return R;
  }
  if (Q.V == Verb::Status)
    return statusResponse();
  if (Q.V == Verb::Shutdown) {
    requestShutdown();
    Response R;
    R.Out = "nadroid-serve: shutting down\n";
    return R;
  }
  // An analysis crash poisons this response, never the daemon. The
  // session keeps whatever consistent state it had.
  try {
    return handleAnalysis(Q);
  } catch (const std::exception &E) {
    Response R;
    R.Ok = false;
    R.Exit = 3;
    R.Err = std::string("error: analysis failed: ") + E.what() + "\n";
    return R;
  } catch (...) {
    Response R;
    R.Ok = false;
    R.Exit = 3;
    R.Err = "error: analysis failed\n";
    return R;
  }
}

Response Server::handleAnalysis(const Request &Q) {
  Response R;
  std::shared_ptr<Session> S = Sessions.acquire(Q.Path);
  std::lock_guard<std::mutex> Lock(S->Mu);
  S->Requests.fetch_add(1);

  std::ifstream In(Q.Path, std::ios::binary);
  if (!In) {
    // Byte-identical to the CLI path: parseProgramFile's cannot-open
    // diagnostic through the shared renderer.
    ir::Program Placeholder(stemOf(Q.Path));
    std::vector<Diagnostic> Diags{{DiagSeverity::Error, SourceLoc(),
                                   "cannot open file '" + Q.Path + "'"}};
    R.Exit = 2;
    R.Err = report::renderParseDiagnostics(Placeholder, Diags);
    R.L1 = "error";
    return R;
  }
  std::ostringstream Contents;
  Contents << In.rdbuf();
  std::string Raw = Contents.str();

  std::string Key;
  if (S->Prog && Raw == S->RawBytes) {
    R.L1 = "hit";
    S->RawHits.fetch_add(1);
  } else {
    // The session can't answer as-is; see whether a previous daemon run
    // already computed this exact response (same bytes, same options,
    // same request shape) before paying for parse + analysis.
    if (L2.enabled()) {
      Key = cache::serveResponseKey(Raw, Q.Pipeline.fingerprint(),
                                    Q.signature());
      std::string Entry;
      Response Cached;
      if (L2.lookup(Key, Entry) && parseResponseEntry(Entry, Cached)) {
        Cached.L1 = S->Prog ? "stale" : "cold";
        Cached.L2 = "hit";
        L2Hits.fetch_add(1);
        return Cached;
      }
      R.L2 = "miss";
    }

    frontend::ParseResult Fresh =
        frontend::parseProgramText(Raw, Q.Path, stemOf(Q.Path));
    if (!Fresh.Success) {
      R.Exit = 2;
      R.Err = report::renderParseDiagnostics(*Fresh.Prog, Fresh.Diags);
      R.L1 = "parse-error"; // the session keeps its last good program
      return R;
    }

    if (!S->Prog) {
      S->Prog = std::move(Fresh.Prog);
      S->AM = std::make_shared<pipeline::AnalysisManager>(*S->Prog,
                                                          Q.Pipeline);
      S->AM->setThreadPool(&Pool);
      R.L1 = "new";
    } else {
      // Reconcile the fresh parse with the resident program so cached
      // analyses survive everything the edit didn't touch.
      frontend::IncrementalEdit Edit =
          frontend::applyIncrementalEdit(*S->Prog, *Fresh.Prog);
      switch (Edit.Kind) {
      case frontend::EditKind::FormattingOnly:
        R.L1 = "rebase"; // locations refreshed, no analysis invalidated
        S->Rebases.fetch_add(1);
        break;
      case frontend::EditKind::BodiesChanged:
        S->AM->invalidateBodyEdit(Edit.ChangedMethods);
        R.L1 = "regraft";
        S->Regrafts.fetch_add(1);
        break;
      case frontend::EditKind::Structural:
        S->Prog = std::move(Fresh.Prog);
        S->AM = std::make_shared<pipeline::AnalysisManager>(*S->Prog,
                                                            Q.Pipeline);
        S->AM->setThreadPool(&Pool);
        R.L1 = "swap";
        S->Swaps.fetch_add(1);
        break;
      }
    }
    S->RawBytes = std::move(Raw);
  }

  // Option-directed invalidation: a request with different knobs drops
  // exactly the option-sensitive analyses (no-op when unchanged).
  S->AM->setOptions(Q.Pipeline);

  // Snapshot per-pass build counts so the response can report exactly
  // what this request rebuilt — the incrementality tests assert on it.
  std::map<std::string, uint64_t> Before;
  for (const pipeline::PassStat &PS : S->AM->passStats())
    Before[PS.Name] = PS.Builds;

  if (Q.V == Verb::Lint) {
    report::LintResult L = report::runLintChecks(*S->AM);
    std::ostringstream OS;
    report::renderLintReport(*S->Prog, L, Q.Json, Q.Explain, OS);
    R.Out = OS.str();
    R.Exit = L.empty() ? 0 : 6;
  } else {
    report::NadroidResult NR = report::analyzeProgram(S->AM);
    if (Q.Json) {
      R.Out = report::renderJson(NR, *S->Prog);
    } else {
      std::ostringstream OS;
      report::renderStandardReport(NR, *S->Prog, Q.ShowAll, Q.Explain, OS);
      R.Out = OS.str();
    }
    R.Exit = NR.Pipeline.RemainingAfterUnsound == 0 ? 0 : 1;
  }

  for (const pipeline::PassStat &PS : S->AM->passStats()) {
    auto It = Before.find(PS.Name);
    uint64_t Prior = It == Before.end() ? 0 : It->second;
    if (PS.Builds > Prior)
      R.Built.push_back(PS.Name);
  }

  if (!Key.empty() && L2.store(Key, renderResponseEntry(R))) {
    R.L2 = "store";
    L2Stores.fetch_add(1);
  }
  return R;
}

Response Server::statusResponse() const {
  std::vector<std::shared_ptr<Session>> Snap = Sessions.snapshot();
  std::ostringstream OS;
  OS << "sessions: " << Snap.size() << "/" << Sessions.capacity()
     << " resident, " << Sessions.evictions() << " evicted\n";
  for (const auto &S : Snap)
    OS << "  " << S->Path << ": requests=" << S->Requests.load()
       << " raw-hits=" << S->RawHits.load()
       << " rebases=" << S->Rebases.load()
       << " regrafts=" << S->Regrafts.load() << " swaps=" << S->Swaps.load()
       << "\n";
  OS << "requests: " << Requests.load() << " total, " << Malformed.load()
     << " malformed, " << Dropped.load() << " dropped connections\n";
  if (L2.enabled())
    OS << "l2: dir=" << L2.directory() << " hits=" << L2Hits.load()
       << " stores=" << L2Stores.load() << "\n";
  else
    OS << "l2: disabled\n";
  Response R;
  R.Out = OS.str();
  return R;
}

void Server::requestShutdown() {
  if (Shutdown.exchange(true))
    return;
  // Unblock the accept loop and every blocked connection read; pending
  // response writes still flush (reads only are shut down).
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  std::lock_guard<std::mutex> L(ConnMu);
  for (int Fd : Conns)
    ::shutdown(Fd, SHUT_RD);
}

bool Server::start(std::string &Error) {
  sockaddr_un Addr;
  if (!socketAddress(Opts.SocketPath, Addr)) {
    Error = "socket path too long: '" + Opts.SocketPath + "'";
    return false;
  }
  // A client that disconnects mid-response must be a dropped connection,
  // not a fatal signal. writeAllBytes passes MSG_NOSIGNAL too; this
  // covers any other path that touches the socket.
  std::signal(SIGPIPE, SIG_IGN);
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("cannot create socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(Opts.SocketPath.c_str()); // replace a stale socket file
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = "cannot bind '" + Opts.SocketPath +
            "': " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 64) < 0) {
    Error = "cannot listen on '" + Opts.SocketPath +
            "': " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (Opts.Log)
    *Opts.Log << "nadroid-serve: listening on " << Opts.SocketPath << "\n";
  return true;
}

int Server::run() {
  while (!Shutdown.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listen socket shut down, or unrecoverable
    }
    if (Shutdown.load()) {
      ::close(Fd);
      break;
    }
    // Dead-client hygiene: a connection silent for five minutes gives
    // its lane back.
    timeval Tv{};
    Tv.tv_sec = 300;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    {
      std::lock_guard<std::mutex> L(ConnMu);
      Conns.insert(Fd);
    }
    Pool.submit([this, Fd] { connection(Fd); });
  }
  // Drain: blocked reads were unblocked by requestShutdown; in-flight
  // analyses finish and their responses still go out.
  {
    std::unique_lock<std::mutex> L(ConnMu);
    ConnCv.wait(L, [this] { return Conns.empty(); });
  }
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(Opts.SocketPath.c_str());
  if (Opts.Log)
    *Opts.Log << "nadroid-serve: shut down\n";
  return 0;
}

void Server::connection(int Fd) {
  std::string Buffer;
  while (true) {
    size_t Eol;
    bool Gone = false;
    while ((Eol = Buffer.find('\n')) == std::string::npos) {
      if (Buffer.size() > MaxRequestLine) {
        Response R;
        R.Ok = false;
        R.Exit = 2;
        R.Err = "error: request line too long\n";
        writeAllBytes(Fd, renderResponseHeader(R) + R.Out + R.Err);
        Gone = true;
        break;
      }
      if (!readChunk(Fd, Buffer)) {
        Gone = true; // EOF, idle timeout, or shutdown
        break;
      }
    }
    if (Gone)
      break;
    std::string Line = Buffer.substr(0, Eol);
    Buffer.erase(0, Eol + 1);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();

    Response R = handle(Line);
    if (!writeAllBytes(Fd, renderResponseHeader(R) + R.Out + R.Err)) {
      Dropped.fetch_add(1);
      if (Opts.Log)
        *Opts.Log << "nadroid-serve: dropped connection "
                     "(client went away mid-response)\n";
      break;
    }
    if (Shutdown.load())
      break;
  }
  ::close(Fd);
  {
    std::lock_guard<std::mutex> L(ConnMu);
    Conns.erase(Fd);
  }
  ConnCv.notify_all();
}

int serve::runServe(const ServerOptions &O) {
  Server S(O);
  std::string Error;
  if (!S.start(Error)) {
    std::cerr << "error: " << Error << "\n";
    return 2;
  }
  return S.run();
}
