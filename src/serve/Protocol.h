//===- serve/Protocol.h - Serve daemon wire protocol ------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line protocol `nadroid --serve` speaks over its unix-domain
/// socket. A request is one newline-terminated line of space-separated
/// words:
///
///   analyze <file.air> [--all] [--explain] [--json] [--k N]
///           [--fragments] [--syntactic-filters] [--refute] [--refute-v2]
///   lint    <file.air> [--json] [--explain] [--k N] [--fragments]
///   explain <file.air> [...]      — analyze with --explain forced
///   status                        — session-table / cache introspection
///   shutdown                      — drain and exit 0
///
/// The per-request flags are exactly the one-shot CLI's analysis flags:
/// a request means "what would `nadroid <flags> <file>` print?", and the
/// response carries those bytes verbatim.
///
/// A response is one status line followed by two length-delimited
/// payloads (the one-shot CLI's stdout and stderr bytes):
///
///   nadroid-serve/1 <ok|error> exit=<N> out=<bytes> err=<bytes>
///       l1=<tag> l2=<tag> built=<csv|->     (one line, then a newline)
///   <out bytes><err bytes>
///
/// `exit` is the exit code the one-shot CLI would have returned. `l1`
/// tells what the session table did (hit, formatting-only rebase,
/// incremental regraft, full swap, new session, ...), `l2` what the
/// persistent response cache did, and `built` lists the passes this
/// request actually rebuilt (from AnalysisManager::passStats deltas) —
/// the integration tests assert incrementality through it. Fixed-width
/// framing rather than JSON so payload bytes need no escaping and the
/// client can forward them untouched.
///
/// Malformed input (unknown verb, unknown flag, bad --k, missing path)
/// produces an `error` response with exit=2 and the diagnostic in the
/// err payload — never a dropped connection, never a wedged slot.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SERVE_PROTOCOL_H
#define NADROID_SERVE_PROTOCOL_H

#include "pipeline/AnalysisManager.h"

#include <string>
#include <vector>

namespace nadroid::serve {

/// The protocol's own version tag, the first word of every response.
inline constexpr const char *ProtocolBanner = "nadroid-serve/1";

enum class Verb {
  Analyze,
  Lint,
  Explain, ///< analyze with the explanation prose forced on
  Status,
  Shutdown,
};

const char *verbName(Verb V);

/// One parsed request line.
struct Request {
  Verb V = Verb::Status;
  std::string Path; ///< the .air file (analyze/lint/explain)
  pipeline::PipelineOptions Pipeline;
  bool ShowAll = false;
  bool Explain = false;
  bool Json = false;

  /// The request identity the L2 response cache keys on: verb plus every
  /// rendering flag, normalized so equivalent requests share entries
  /// (`explain f` and `analyze f --explain` fingerprint identically; the
  /// pipeline options are a separate key component).
  std::string signature() const;
};

/// Parses one request line. On failure returns false and sets \p Error
/// to the diagnostic (mirroring the CLI's "error: ..." wording).
bool parseRequest(const std::string &Line, Request &Out, std::string &Error);

/// One response, either side of the wire.
struct Response {
  bool Ok = true;
  int Exit = 0;
  std::string Out; ///< the one-shot CLI's stdout bytes
  std::string Err; ///< the one-shot CLI's stderr bytes, or the protocol error
  std::string L1 = "-"; ///< session-table outcome tag
  std::string L2 = "-"; ///< response-cache outcome tag
  std::vector<std::string> Built; ///< passes rebuilt by this request
};

/// The status line (with trailing newline); payloads are appended by the
/// transport.
std::string renderResponseHeader(const Response &R);

/// Parses a status line; false when it is not a nadroid-serve/1 header.
/// OutLen/ErrLen return the payload lengths the caller must then read.
bool parseResponseHeader(const std::string &Line, Response &Out,
                         size_t &OutLen, size_t &ErrLen);

/// The single-line cache entry for a response (exit + payloads; the
/// header tags are per-request observations and are not persisted), and
/// its inverse. parseResponseEntry refuses alien or truncated lines.
std::string renderResponseEntry(const Response &R);
bool parseResponseEntry(const std::string &Line, Response &Out);

} // namespace nadroid::serve

#endif // NADROID_SERVE_PROTOCOL_H
