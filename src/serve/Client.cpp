//===- serve/Client.cpp - The nadroid --connect client --------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// `nadroid --connect <socket> <request words...>`: one request, one
// response, exit with the code the one-shot CLI would have used. The
// client adds nothing to the payloads — the daemon's out/err bytes go to
// stdout/stderr verbatim, which is what makes `--connect` a drop-in for
// the one-shot invocation in scripts.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "serve/SocketIo.h"

#include <csignal>
#include <cstring>
#include <ostream>

using namespace nadroid;
using namespace nadroid::serve;

int serve::runClient(const std::string &SocketPath,
                     const std::string &RequestLine, std::ostream &Out,
                     std::ostream &Err) {
  sockaddr_un Addr;
  if (!socketAddress(SocketPath, Addr)) {
    Err << "error: socket path too long: '" << SocketPath << "'\n";
    return 7;
  }
  std::signal(SIGPIPE, SIG_IGN);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err << "error: cannot create socket: " << std::strerror(errno) << "\n";
    return 7;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err << "error: cannot connect to '" << SocketPath
        << "': " << std::strerror(errno) << "\n";
    ::close(Fd);
    return 7;
  }
  if (!writeAllBytes(Fd, RequestLine + "\n")) {
    Err << "error: daemon closed the connection\n";
    ::close(Fd);
    return 7;
  }

  // One header line, then exactly out+err payload bytes.
  std::string Buffer;
  size_t Eol;
  while ((Eol = Buffer.find('\n')) == std::string::npos) {
    if (!readChunk(Fd, Buffer)) {
      Err << "error: daemon closed the connection mid-response\n";
      ::close(Fd);
      return 7;
    }
  }
  Response R;
  size_t OutLen = 0, ErrLen = 0;
  if (!parseResponseHeader(Buffer.substr(0, Eol), R, OutLen, ErrLen)) {
    Err << "error: not a nadroid-serve/1 response\n";
    ::close(Fd);
    return 7;
  }
  Buffer.erase(0, Eol + 1);
  while (Buffer.size() < OutLen + ErrLen) {
    if (!readChunk(Fd, Buffer)) {
      Err << "error: daemon closed the connection mid-response\n";
      ::close(Fd);
      return 7;
    }
  }
  ::close(Fd);
  Out << Buffer.substr(0, OutLen);
  Err << Buffer.substr(OutLen, ErrLen);
  Out.flush();
  Err.flush();
  return R.Exit;
}
