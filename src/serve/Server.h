//===- serve/Server.h - The nadroid --serve daemon --------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived analyzer daemon behind `nadroid --serve <socket>`: a
/// unix-domain-socket server speaking serve/Protocol.h, answering each
/// request with the bytes the one-shot CLI would have printed. Apps stay
/// resident between requests (serve/Session.h), so a re-analyze after an
/// edit pays only for the passes the edit invalidated; the persistent
/// ResultCache rides behind the session table as L2.
///
/// Request handling is two-layered: Server::handle answers one request
/// line in-process (the integration tests drive it directly, no socket),
/// and the transport — start()/run() — moves lines and payloads over the
/// socket, one connection per pool task. Transport failures never kill
/// the daemon: SIGPIPE is ignored, a short write is a logged dropped
/// connection, and a malformed line is an `error` response on a healthy
/// connection.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SERVE_SERVER_H
#define NADROID_SERVE_SERVER_H

#include "cache/ResultCache.h"
#include "serve/Protocol.h"
#include "serve/Session.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <set>
#include <string>

namespace nadroid::serve {

struct ServerOptions {
  std::string SocketPath;
  unsigned Jobs = 0;        ///< pool lanes (0 = one per hardware thread)
  unsigned MaxSessions = 8; ///< L1 session-table capacity
  std::string CacheDir;     ///< L2 response cache directory (empty = off)
  std::ostream *Log = nullptr; ///< connection/lifecycle log (null = quiet)
};

class Server {
public:
  explicit Server(ServerOptions O);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Answers one request line — the whole daemon minus the socket. Never
  /// throws: analysis crashes come back as exit-3 error responses.
  Response handle(const std::string &Line);

  bool shutdownRequested() const { return Shutdown.load(); }

  /// Flips the shutdown flag and unblocks the accept loop and every
  /// blocked connection read. Idempotent; callable from any thread.
  void requestShutdown();

  /// Binds and listens on SocketPath (replacing a stale socket file).
  /// False + \p Error on failure; no partial state to clean up.
  bool start(std::string &Error);

  /// Accepts until shutdown, then drains live connections. Returns the
  /// process exit code (0 on a clean shutdown).
  int run();

  const SessionTable &sessionTable() const { return Sessions; }

private:
  Response handleAnalysis(const Request &Q);
  Response statusResponse() const;
  void connection(int Fd);

  ServerOptions Opts;
  support::ThreadPool Pool;
  SessionTable Sessions;
  cache::ResultCache L2;

  std::atomic<bool> Shutdown{false};
  int ListenFd = -1;

  mutable std::mutex ConnMu;
  std::set<int> Conns;          ///< fds of live connections
  std::condition_variable ConnCv; ///< signaled as connections retire

  // Daemon-lifetime counters for `status`.
  std::atomic<uint64_t> Requests{0}, L2Hits{0}, L2Stores{0}, Malformed{0},
      Dropped{0};
};

/// `nadroid --serve`: builds and runs a Server; exit 2 when the socket
/// cannot be set up.
int runServe(const ServerOptions &O);

/// `nadroid --connect`: sends one request line to the daemon at
/// \p SocketPath, streams the response payloads to \p Out / \p Err, and
/// returns the exit code the response carries — or 7 when the daemon is
/// unreachable or answers something that is not a nadroid-serve/1
/// response.
int runClient(const std::string &SocketPath, const std::string &RequestLine,
              std::ostream &Out, std::ostream &Err);

} // namespace nadroid::serve

#endif // NADROID_SERVE_SERVER_H
