//===- serve/SocketIo.h - Socket I/O helpers for the daemon -----*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The few lines of unix-socket plumbing the server and the client
/// share. Everything here is resilient by policy: EINTR retries, partial
/// writes loop, and a peer that vanished is a `false`/0 the caller turns
/// into a dropped connection — never a signal (writes pass MSG_NOSIGNAL,
/// and the daemon additionally ignores SIGPIPE for any path that writes
/// without it).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SERVE_SOCKETIO_H
#define NADROID_SERVE_SOCKETIO_H

#include <cerrno>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace nadroid::serve {

/// Writes all of \p Bytes to \p Fd, looping over short writes. False when
/// the peer is gone (EPIPE/ECONNRESET/...) — with MSG_NOSIGNAL, so a dead
/// client surfaces as an error return, not SIGPIPE.
inline bool writeAllBytes(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N =
        ::send(Fd, Bytes.data() + Off, Bytes.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Appends the next chunk from \p Fd to \p Buffer. False on EOF, timeout,
/// or any terminal error — for the daemon all three mean the same thing:
/// this connection is done.
inline bool readChunk(int Fd, std::string &Buffer) {
  char Chunk[4096];
  while (true) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      Buffer.append(Chunk, static_cast<size_t>(N));
      return true;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
}

/// Fills \p Addr for \p Path; false when the path exceeds sun_path.
inline bool socketAddress(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return false;
  Addr = {};
  Addr.sun_family = AF_UNIX;
  Path.copy(Addr.sun_path, Path.size());
  return true;
}

} // namespace nadroid::serve

#endif // NADROID_SERVE_SOCKETIO_H
