//===- serve/Protocol.cpp - Serve daemon wire protocol --------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "cache/ResultCache.h"
#include "report/Json.h"
#include "support/StringUtils.h"

#include <sstream>

using namespace nadroid;
using namespace nadroid::serve;

const char *serve::verbName(Verb V) {
  switch (V) {
  case Verb::Analyze:
    return "analyze";
  case Verb::Lint:
    return "lint";
  case Verb::Explain:
    return "explain";
  case Verb::Status:
    return "status";
  case Verb::Shutdown:
    return "shutdown";
  }
  return "?";
}

std::string Request::signature() const {
  // `explain f` is `analyze f --explain`; collapse them so they share an
  // L2 entry. The pipeline options are keyed separately (fingerprint()).
  std::ostringstream OS;
  OS << (V == Verb::Lint ? "lint" : "analyze");
  OS << ";all=" << (ShowAll ? 1 : 0);
  OS << ";explain=" << ((Explain || V == Verb::Explain) ? 1 : 0);
  OS << ";json=" << (Json ? 1 : 0);
  return OS.str();
}

static std::vector<std::string> splitWords(const std::string &Line) {
  std::vector<std::string> Words;
  std::istringstream IS(Line);
  std::string W;
  while (IS >> W)
    Words.push_back(W);
  return Words;
}

bool serve::parseRequest(const std::string &Line, Request &Out,
                         std::string &Error) {
  std::vector<std::string> Words = splitWords(Line);
  if (Words.empty()) {
    Error = "error: empty request";
    return false;
  }

  Request Q;
  const std::string &VerbWord = Words[0];
  if (VerbWord == "analyze")
    Q.V = Verb::Analyze;
  else if (VerbWord == "lint")
    Q.V = Verb::Lint;
  else if (VerbWord == "explain")
    Q.V = Verb::Explain;
  else if (VerbWord == "status")
    Q.V = Verb::Status;
  else if (VerbWord == "shutdown")
    Q.V = Verb::Shutdown;
  else {
    Error = "error: unknown request verb '" + VerbWord + "'";
    return false;
  }

  if (Q.V == Verb::Status || Q.V == Verb::Shutdown) {
    if (Words.size() > 1) {
      Error = "error: " + std::string(verbName(Q.V)) + " takes no arguments";
      return false;
    }
    Out = Q;
    return true;
  }

  // analyze / lint / explain: <file> plus the one-shot CLI's analysis
  // flags, parsed with the CLI's own diagnostics.
  for (size_t I = 1; I < Words.size(); ++I) {
    const std::string &W = Words[I];
    if (W == "--all")
      Q.ShowAll = true;
    else if (W == "--explain")
      Q.Explain = true;
    else if (W == "--json")
      Q.Json = true;
    else if (W == "--fragments")
      Q.Pipeline.ModelFragments = true;
    else if (W == "--syntactic-filters")
      Q.Pipeline.DataflowGuards = false;
    else if (W == "--refute")
      Q.Pipeline.Refute = true;
    else if (W == "--refute-v2")
      Q.Pipeline.RefuteHistory = Q.Pipeline.Refute = true;
    else if (W == "--k") {
      if (I + 1 >= Words.size()) {
        Error = "error: --k needs a value";
        return false;
      }
      const std::string &Value = Words[++I];
      unsigned long long K = 0;
      if (!parseUnsigned(Value, K)) {
        Error = "error: --k: '" + Value + "' is not a number";
        return false;
      }
      if (K < 1) {
        Error = "error: --k must be at least 1";
        return false;
      }
      Q.Pipeline.K = static_cast<unsigned>(K);
    } else if (W.rfind("--", 0) == 0) {
      Error = "error: unknown request flag '" + W + "'";
      return false;
    } else if (Q.Path.empty()) {
      Q.Path = W;
    } else {
      Error = "error: " + std::string(verbName(Q.V)) + " takes one file";
      return false;
    }
  }
  if (Q.Path.empty()) {
    Error = "error: " + std::string(verbName(Q.V)) + " needs a file";
    return false;
  }
  if (Q.V == Verb::Explain)
    Q.Explain = true;
  if (Q.V == Verb::Lint)
    Q.Pipeline.Lint = true;
  Out = Q;
  return true;
}

std::string serve::renderResponseHeader(const Response &R) {
  std::ostringstream OS;
  OS << ProtocolBanner << " " << (R.Ok ? "ok" : "error")
     << " exit=" << R.Exit << " out=" << R.Out.size()
     << " err=" << R.Err.size() << " l1=" << R.L1 << " l2=" << R.L2
     << " built=";
  if (R.Built.empty())
    OS << "-";
  else
    for (size_t I = 0; I < R.Built.size(); ++I)
      OS << (I ? "," : "") << R.Built[I];
  OS << "\n";
  return OS.str();
}

/// "key=value" words after the second; order is fixed by the renderer but
/// the parser accepts any, so the format can grow fields compatibly.
bool serve::parseResponseHeader(const std::string &Line, Response &Out,
                                size_t &OutLen, size_t &ErrLen) {
  std::vector<std::string> Words = splitWords(Line);
  if (Words.size() < 2 || Words[0] != ProtocolBanner)
    return false;
  Response R;
  if (Words[1] == "ok")
    R.Ok = true;
  else if (Words[1] == "error")
    R.Ok = false;
  else
    return false;

  OutLen = ErrLen = 0;
  bool SawOut = false, SawErr = false;
  for (size_t I = 2; I < Words.size(); ++I) {
    size_t Eq = Words[I].find('=');
    if (Eq == std::string::npos)
      return false;
    std::string Key = Words[I].substr(0, Eq);
    std::string Value = Words[I].substr(Eq + 1);
    unsigned long long N = 0;
    if (Key == "exit") {
      if (!parseUnsigned(Value, N) || N > 255)
        return false;
      R.Exit = static_cast<int>(N);
    } else if (Key == "out") {
      if (!parseUnsigned(Value, N))
        return false;
      OutLen = static_cast<size_t>(N);
      SawOut = true;
    } else if (Key == "err") {
      if (!parseUnsigned(Value, N))
        return false;
      ErrLen = static_cast<size_t>(N);
      SawErr = true;
    } else if (Key == "l1") {
      R.L1 = Value;
    } else if (Key == "l2") {
      R.L2 = Value;
    } else if (Key == "built") {
      if (Value != "-")
        for (std::string_view Name : split(Value, ','))
          R.Built.emplace_back(Name);
    }
    // Unknown keys are skipped: a newer server's extra fields must not
    // strand an older client mid-stream.
  }
  if (!SawOut || !SawErr)
    return false;
  Out = R;
  return true;
}

std::string serve::renderResponseEntry(const Response &R) {
  std::ostringstream OS;
  OS << "{\"serve\": " << cache::ServeSchemaVersion << ", \"exit\": " << R.Exit
     << ", \"out\": \"" << report::jsonEscape(R.Out) << "\", \"err\": \""
     << report::jsonEscape(R.Err) << "\"}";
  return OS.str();
}

bool serve::parseResponseEntry(const std::string &Line, Response &Out) {
  // Presence-checked scans: empty payloads are legitimate, so the
  // convenience accessors' "empty when absent" is not distinguishing
  // enough here.
  std::string Raw;
  unsigned long long N = 0;
  if (!report::jsonFindRaw(Line, "serve", Raw) || !parseUnsigned(Raw, N) ||
      N != cache::ServeSchemaVersion)
    return false;
  Response R;
  if (!report::jsonFindRaw(Line, "exit", Raw) || !parseUnsigned(Raw, N) ||
      N > 255)
    return false;
  R.Exit = static_cast<int>(N);
  if (!report::jsonFindRaw(Line, "out", Raw))
    return false;
  R.Out = report::jsonUnescape(Raw);
  if (!report::jsonFindRaw(Line, "err", Raw))
    return false;
  R.Err = report::jsonUnescape(Raw);
  Out = R;
  return true;
}
