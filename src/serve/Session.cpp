//===- serve/Session.cpp - Resident per-app analysis sessions -------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "serve/Session.h"

#include <algorithm>

using namespace nadroid;
using namespace nadroid::serve;

std::shared_ptr<Session> SessionTable::acquire(const std::string &Path) {
  std::lock_guard<std::mutex> L(Mu);
  for (auto It = Lru.begin(); It != Lru.end(); ++It) {
    if ((*It)->Path == Path) {
      std::shared_ptr<Session> S = *It;
      Lru.erase(It);
      Lru.push_front(S);
      return S;
    }
  }
  auto S = std::make_shared<Session>(Path);
  Lru.push_front(S);
  if (Lru.size() > Cap) {
    Lru.pop_back();
    ++Evictions;
  }
  return S;
}

std::vector<std::shared_ptr<Session>> SessionTable::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  return {Lru.begin(), Lru.end()};
}

bool SessionTable::resident(const std::string &Path) const {
  std::lock_guard<std::mutex> L(Mu);
  return std::any_of(Lru.begin(), Lru.end(),
                     [&](const auto &S) { return S->Path == Path; });
}

uint64_t SessionTable::evictions() const {
  std::lock_guard<std::mutex> L(Mu);
  return Evictions;
}
