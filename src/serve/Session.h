//===- serve/Session.h - Resident per-app analysis sessions -----*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's L1: resident per-app sessions. A Session owns the last
/// parsed ir::Program for one .air path together with its live
/// AnalysisManager, so a re-analyze request pays only for what the edit
/// actually invalidated (frontend/Incremental.h decides how much that
/// is). The SessionTable bounds residency LRU-fashion; the persistent
/// ResultCache sits behind it as L2, keyed on raw file bytes.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_SERVE_SESSION_H
#define NADROID_SERVE_SESSION_H

#include "ir/Ir.h"
#include "pipeline/AnalysisManager.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nadroid::serve {

/// One resident app. The mutex serializes requests touching this app
/// (the AnalysisManager is single-threaded by contract); requests for
/// different apps run concurrently on the server pool.
struct Session {
  explicit Session(std::string P) : Path(std::move(P)) {}

  const std::string Path;
  std::mutex Mu;

  /// Bytes of the last successfully parsed source — the currency check
  /// is raw byte equality, so an untouched file re-runs nothing at all.
  std::string RawBytes;

  std::unique_ptr<ir::Program> Prog;
  std::shared_ptr<pipeline::AnalysisManager> AM;

  // Lifetime counters for the `status` verb. Atomic so status can read
  // them without queueing behind an in-flight analysis.
  std::atomic<uint64_t> Requests{0}; ///< requests answered here
  std::atomic<uint64_t> RawHits{0};  ///< source unchanged, nothing re-run
  std::atomic<uint64_t> Rebases{0};  ///< formatting-only edits absorbed
  std::atomic<uint64_t> Regrafts{0}; ///< body edits absorbed incrementally
  std::atomic<uint64_t> Swaps{0};    ///< structural edits, full rebuild
};

/// LRU-bounded map from path to session. Sessions are handed out as
/// shared_ptr, so evicting one that a request still holds never
/// destroys it mid-analysis — the request finishes on the detached
/// session, which dies when the last holder unlocks.
class SessionTable {
public:
  explicit SessionTable(size_t Capacity) : Cap(Capacity ? Capacity : 1) {}

  /// The session for \p Path: the resident one bumped to most-recent, or
  /// a fresh one (evicting the least-recent when the table is full).
  std::shared_ptr<Session> acquire(const std::string &Path);

  /// Resident sessions, most recently used first.
  std::vector<std::shared_ptr<Session>> snapshot() const;

  /// True when \p Path is resident right now (tests poke this).
  bool resident(const std::string &Path) const;

  size_t capacity() const { return Cap; }
  uint64_t evictions() const;

private:
  mutable std::mutex Mu;
  size_t Cap;
  uint64_t Evictions = 0;
  std::list<std::shared_ptr<Session>> Lru; ///< front = most recent
};

} // namespace nadroid::serve

#endif // NADROID_SERVE_SESSION_H
