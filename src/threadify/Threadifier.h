//===- threadify/Threadifier.h - Threadification (§4) -----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Threadification transforms an event-driven AIR program into the thread
/// forest a conventional multi-threaded race detector can consume:
///
///  * Component entry callbacks (Activity/Service lifecycle and UI/system
///    callbacks, manifest receivers) become EC threads under the dummy
///    main.
///  * Imperatively registered listeners (set*Listener,
///    requestLocationUpdates) also become EC threads under the dummy main
///    — Figure 3(b).
///  * Handler.post/sendMessage, runOnUiThread, bindService, and
///    registerReceiver targets become PC threads under the posting thread
///    — Figure 3(c)/(d) — preserving the poster→postee causal lineage.
///  * AsyncTask.execute spawns a native doInBackground thread whose
///    onPreExecute/onProgressUpdate/onPostExecute callbacks hang off it —
///    Figure 3(e). Thread.start spawns a plain native thread.
///
/// The walk is recursive (callbacks registered by callbacks become new
/// threads) and terminates by memoizing (poster callback, target callback,
/// API kind) triples.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_THREADIFY_THREADIFIER_H
#define NADROID_THREADIFY_THREADIFIER_H

#include "threadify/ThreadForest.h"

namespace nadroid::threadify {

/// Options controlling the modeling.
struct ThreadifyOptions {
  /// When false, Fragment classes are skipped entirely, reproducing the
  /// prototype limitation of §8.1 (Table 3's Browser miss). There is no
  /// supported "true" mode — the flag exists so tests can assert the
  /// limitation is intentional.
  bool ModelFragments = false;
};

/// Runs threadification over \p P.
ThreadForest threadify(const ir::Program &P,
                       const ThreadifyOptions &Options = ThreadifyOptions());

} // namespace nadroid::threadify

#endif // NADROID_THREADIFY_THREADIFIER_H
