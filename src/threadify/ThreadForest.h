//===- threadify/ThreadForest.h - Modeled threads ---------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of threadification (§4): a forest of modeled threads rooted
/// at the dummy main (the initial looper thread). Entry Callbacks become
/// children of the dummy main; Posted Callbacks become children of the
/// posting callback/thread (preserving the poster→postee causal lineage);
/// AsyncTask machinery and Thread.start create native threads. The forest
/// is what turns single-looper event-ordering bugs into multi-thread
/// ordering bugs a conventional detector can find.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_THREADIFY_THREADFOREST_H
#define NADROID_THREADIFY_THREADFOREST_H

#include "android/Callbacks.h"
#include "ir/Stmt.h"

#include <memory>
#include <string>
#include <vector>

namespace nadroid::threadify {

/// How a modeled thread came to exist.
enum class ThreadOrigin : uint8_t {
  DummyMain,      ///< The synthetic root (initial looper thread).
  EntryCallback,  ///< EC: externally invoked by the Android runtime.
  PostedCallback, ///< PC: posted/registered from within the app.
  NativeThread,   ///< Thread.run or AsyncTask.doInBackground.
};

const char *threadOriginName(ThreadOrigin Origin);

/// One modeled thread: a callback (or native thread body) plus its lineage
/// and the Android identities the filters need (component, service
/// connection instance, AsyncTask instance).
class ModeledThread {
public:
  ModeledThread(unsigned Id, ThreadOrigin Origin,
                android::CallbackKind CbKind, ir::Method *Callback,
                ModeledThread *Parent, const ir::CallStmt *SpawnSite)
      : Id(Id), Origin(Origin), CbKind(CbKind), Callback(Callback),
        Parent(Parent), SpawnSite(SpawnSite) {}

  unsigned id() const { return Id; }
  ThreadOrigin origin() const { return Origin; }
  android::CallbackKind callbackKind() const { return CbKind; }
  /// The callback/body method; nullptr only for the dummy main.
  ir::Method *callback() const { return Callback; }
  ModeledThread *parent() const { return Parent; }
  /// The API call that installed/posted/spawned this thread; nullptr for
  /// the dummy main and for component entry callbacks.
  const ir::CallStmt *spawnSite() const { return SpawnSite; }

  /// The component whose lifecycle window contains this thread (the
  /// Activity/Service/Receiver class); nullptr for the dummy main.
  ir::Clazz *component() const { return Component; }
  void setComponent(ir::Clazz *C) { Component = C; }

  /// False when the owning component is not launchable via the manifest —
  /// warnings involving only such threads are the paper's "Not Reachable"
  /// false-positive category (§8.5).
  bool componentReachable() const { return Reachable; }
  void setComponentReachable(bool R) { Reachable = R; }

  /// Nonzero groups onServiceConnected/onServiceDisconnected threads of
  /// one bindService site (MHB-Service, §6.1.1).
  unsigned connectionInstance() const { return ConnInstance; }
  void setConnectionInstance(unsigned I) { ConnInstance = I; }

  /// Nonzero groups the four AsyncTask callbacks of one execute site
  /// (MHB-AsyncTask, §6.1.1).
  unsigned asyncInstance() const { return AsyncInstance; }
  void setAsyncInstance(unsigned I) { AsyncInstance = I; }

  /// True when this thread executes as a callback on *some* looper.
  /// Callbacks are atomic only against callbacks of the same looper —
  /// compare looperId() too (the §8.1 multi-looper extension).
  bool onLooper() const {
    return Origin != ThreadOrigin::NativeThread &&
           android::runsOnLooper(CbKind);
  }

  /// Which looper runs this callback: 0 is the UI looper; nonzero ids
  /// are per-BackgroundHandler loopers. Meaningless for native threads.
  unsigned looperId() const { return LooperId; }
  void setLooperId(unsigned Id) { LooperId = Id; }

  bool isNative() const { return Origin == ThreadOrigin::NativeThread; }

  /// Short label for reports, e.g. "EC onClick@MainActivity".
  std::string label() const;

private:
  unsigned Id;
  ThreadOrigin Origin;
  android::CallbackKind CbKind;
  ir::Method *Callback;
  ModeledThread *Parent;
  const ir::CallStmt *SpawnSite;
  ir::Clazz *Component = nullptr;
  bool Reachable = true;
  unsigned ConnInstance = 0;
  unsigned AsyncInstance = 0;
  unsigned LooperId = 0;
};

/// Owns the modeled threads and answers lineage queries.
class ThreadForest {
public:
  ThreadForest();

  ModeledThread *root() const { return Root; }
  const std::vector<std::unique_ptr<ModeledThread>> &threads() const {
    return Threads;
  }

  /// Creates a thread; called by the threadifier.
  ModeledThread *create(ThreadOrigin Origin, android::CallbackKind CbKind,
                        ir::Method *Callback, ModeledThread *Parent,
                        const ir::CallStmt *SpawnSite);

  /// True when \p Ancestor is on \p T's parent chain (or equal).
  bool isAncestorOrSelf(const ModeledThread *Ancestor,
                        const ModeledThread *T) const;

  /// §7 Reachable Thread: native thread \p N is reachable from callback
  /// thread \p C when N descends from C (transitively across creation and
  /// posting).
  bool isReachableThreadOf(const ModeledThread *N,
                           const ModeledThread *C) const {
    return isAncestorOrSelf(C, N);
  }

  /// Renders "main > onClick@A > run@R" for §7's lineage aid.
  std::string lineage(const ModeledThread *T) const;

  /// Table 1 columns: static EC / PC counts and thread count (dummy main +
  /// native threads).
  unsigned entryCallbackCount() const;
  unsigned postedCallbackCount() const;
  unsigned threadCount() const;

  /// Fresh instance-id allocators used by the threadifier.
  unsigned nextConnectionInstance() { return ++LastConnInstance; }
  unsigned nextAsyncInstance() { return ++LastAsyncInstance; }

private:
  std::vector<std::unique_ptr<ModeledThread>> Threads;
  ModeledThread *Root;
  unsigned LastConnInstance = 0;
  unsigned LastAsyncInstance = 0;
};

} // namespace nadroid::threadify

#endif // NADROID_THREADIFY_THREADFOREST_H
