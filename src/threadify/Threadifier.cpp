//===- threadify/Threadifier.cpp - Threadification (§4) -----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "threadify/Threadifier.h"

#include "android/Api.h"
#include "android/SyntacticReach.h"
#include "ir/LocalInfo.h"

#include <deque>
#include <set>
#include <tuple>

using namespace nadroid;
using namespace nadroid::threadify;
using namespace nadroid::ir;
using android::ApiCallInfo;
using android::ApiKind;
using android::CallbackKind;

namespace {

class ThreadifierImpl {
public:
  ThreadifierImpl(const Program &P, const ThreadifyOptions &Options)
      : P(P), Options(Options), Apis(P) {}

  ThreadForest run() {
    seedComponentCallbacks();
    while (!Worklist.empty()) {
      ModeledThread *T = Worklist.front();
      Worklist.pop_front();
      scanThread(T);
    }
    return std::move(Forest);
  }

private:
  const Program &P;
  const ThreadifyOptions &Options;
  android::ApiIndex Apis;
  ThreadForest Forest;
  std::deque<ModeledThread *> Worklist;
  /// (poster callback, target callback, api kind) triples already modeled;
  /// bounds the recursion when callbacks (re-)post themselves.
  std::set<std::tuple<const Method *, const Method *, int>> SpawnMemo;

  ModeledThread *create(ThreadOrigin Origin, CallbackKind CbKind, Method *M,
                        ModeledThread *Parent, const CallStmt *SpawnSite,
                        Clazz *Component, bool Reachable) {
    ModeledThread *T = Forest.create(Origin, CbKind, M, Parent, SpawnSite);
    T->setComponent(Component);
    T->setComponentReachable(Reachable);
    Worklist.push_back(T);
    return T;
  }

  /// Entry callbacks of components: every lifecycle/UI/system callback of
  /// an Activity or Service, and onReceive of manifest-declared receivers,
  /// becomes an EC thread under the dummy main. Components absent from the
  /// manifest are still modeled (the paper's entry-point identification
  /// over-approximates) but flagged unreachable for the §8.5 report.
  void seedComponentCallbacks() {
    for (const auto &C : P.classes()) {
      switch (C->kind()) {
      case ClassKind::Activity:
      case ClassKind::Service: {
        bool Reachable = P.isManifestComponent(C.get());
        for (const auto &M : C->methods()) {
          CallbackKind K = android::classifyCallback(C->kind(), M->name());
          if (K == CallbackKind::None)
            continue;
          create(ThreadOrigin::EntryCallback, K, M.get(), Forest.root(),
                 nullptr, C.get(), Reachable);
        }
        break;
      }
      case ClassKind::Receiver: {
        if (!P.isManifestComponent(C.get()))
          break; // non-manifest receivers only run once registered
        if (Method *M = C->findOwnMethod("onReceive"))
          create(ThreadOrigin::EntryCallback, CallbackKind::Receive, M,
                 Forest.root(), nullptr, C.get(), true);
        break;
      }
      case ClassKind::Fragment:
        // §8.1: the prototype does not model Fragment callbacks. The
        // opt-in extension treats a Fragment like an always-attached
        // Activity (fragments live inside a resumed host), which is
        // enough to recover Table 3's Browser miss.
        if (Options.ModelFragments) {
          for (const auto &M : C->methods()) {
            CallbackKind K =
                android::classifyCallback(ClassKind::Activity, M->name());
            if (K == CallbackKind::None)
              continue;
            create(ThreadOrigin::EntryCallback, K, M.get(), Forest.root(),
                   nullptr, C.get(), /*Reachable=*/true);
          }
        }
        break;
      default:
        break;
      }
    }
  }

  void scanThread(ModeledThread *T) {
    if (!T->callback())
      return; // dummy main owns no code
    for (Method *M : android::collectReachableMethods(T->callback(), Apis)) {
      forEachStmt(*M, [&](const Stmt &S) {
        const auto *Call = dyn_cast<CallStmt>(&S);
        if (!Call)
          return;
        const ApiCallInfo &Info = Apis.lookup(*Call);
        if (Info.isApi())
          handleSpawn(T, Call, Info);
      });
    }
  }

  bool memoize(ModeledThread *Poster, const Method *Target, ApiKind Kind) {
    return SpawnMemo
        .emplace(Poster->callback(), Target, static_cast<int>(Kind))
        .second;
  }

  void handleSpawn(ModeledThread *T, const CallStmt *Call,
                   const ApiCallInfo &Info) {
    Clazz *Target = Info.Target;
    Clazz *Component = T->component();
    bool Reachable = T->componentReachable();

    switch (Info.Kind) {
    case ApiKind::HandlerPost:
    case ApiKind::RunOnUiThread: {
      Method *Run = Target->findMethod("run");
      if (Run && memoize(T, Run, ApiKind::HandlerPost)) {
        ModeledThread *RT =
            create(ThreadOrigin::PostedCallback, CallbackKind::RunnableRun,
                   Run, T, Call, Component, Reachable);
        // A runnable posted through a BackgroundHandler runs on that
        // handler's own looper (§8.1 multi-looper extension).
        if (Info.Via &&
            Info.Via->kind() == ClassKind::BackgroundHandler)
          RT->setLooperId(Info.Via->id() + 1);
      }
      return;
    }
    case ApiKind::HandlerSend: {
      Method *Handle = Target->findMethod("handleMessage");
      if (Handle && memoize(T, Handle, ApiKind::HandlerSend)) {
        ModeledThread *HT =
            create(ThreadOrigin::PostedCallback, CallbackKind::HandleMessage,
                   Handle, T, Call, Component, Reachable);
        if (Target->kind() == ClassKind::BackgroundHandler)
          HT->setLooperId(Target->id() + 1);
      }
      return;
    }
    case ApiKind::BindService: {
      Method *Conn = Target->findMethod("onServiceConnected");
      Method *Disc = Target->findMethod("onServiceDisconnected");
      if (!Conn && !Disc)
        return;
      Method *MemoKey = Conn ? Conn : Disc;
      if (!memoize(T, MemoKey, ApiKind::BindService))
        return;
      unsigned Instance = Forest.nextConnectionInstance();
      if (Conn) {
        ModeledThread *CT =
            create(ThreadOrigin::PostedCallback, CallbackKind::ServiceConnect,
                   Conn, T, Call, Component, Reachable);
        CT->setConnectionInstance(Instance);
      }
      if (Disc) {
        ModeledThread *DT =
            create(ThreadOrigin::PostedCallback, CallbackKind::ServiceDisconn,
                   Disc, T, Call, Component, Reachable);
        DT->setConnectionInstance(Instance);
      }
      return;
    }
    case ApiKind::RegisterReceiver: {
      Method *Receive = Target->findMethod("onReceive");
      if (Receive && memoize(T, Receive, ApiKind::RegisterReceiver))
        create(ThreadOrigin::PostedCallback, CallbackKind::Receive, Receive,
               T, Call, Component, Reachable);
      return;
    }
    case ApiKind::SetListener: {
      // Imperatively registered listeners are still *entry* callbacks
      // (Figure 3(b)): the runtime posts them externally, so they hang
      // off the dummy main, not off the registering callback.
      for (const auto &M : Target->methods()) {
        CallbackKind K =
            android::classifyCallback(Target->kind(), M->name());
        if (K == CallbackKind::None)
          continue;
        if (memoize(T, M.get(), ApiKind::SetListener))
          create(ThreadOrigin::EntryCallback, K, M.get(), Forest.root(),
                 Call, Component, Reachable);
      }
      return;
    }
    case ApiKind::AsyncExecute: {
      Method *Background = Target->findMethod("doInBackground");
      Method *MemoKey =
          Background ? Background : Target->findMethod("onPostExecute");
      if (!MemoKey || !memoize(T, MemoKey, ApiKind::AsyncExecute))
        return;
      unsigned Instance = Forest.nextAsyncInstance();
      // Figure 3(e): the looper-side callbacks are children of the
      // doInBackground thread (or of the poster when the task has no
      // background body).
      ModeledThread *TaskParent = T;
      if (Background) {
        ModeledThread *BG = create(ThreadOrigin::NativeThread,
                                   CallbackKind::AsyncBackground, Background,
                                   T, Call, Component, Reachable);
        BG->setAsyncInstance(Instance);
        TaskParent = BG;
      }
      const std::pair<const char *, CallbackKind> LooperSide[] = {
          {"onPreExecute", CallbackKind::AsyncPre},
          {"onProgressUpdate", CallbackKind::AsyncProgress},
          {"onPostExecute", CallbackKind::AsyncPost},
      };
      for (const auto &[Name, Kind] : LooperSide) {
        if (Method *M = Target->findMethod(Name)) {
          ModeledThread *CT = create(ThreadOrigin::PostedCallback, Kind, M,
                                     TaskParent, Call, Component, Reachable);
          CT->setAsyncInstance(Instance);
        }
      }
      return;
    }
    case ApiKind::ThreadStart: {
      Method *Run = Target->findMethod("run");
      if (Run && memoize(T, Run, ApiKind::ThreadStart))
        create(ThreadOrigin::NativeThread, CallbackKind::ThreadRun, Run, T,
               Call, Component, Reachable);
      return;
    }
    case ApiKind::PublishProgress:
      // onProgressUpdate is already modeled at the execute site.
      return;
    case ApiKind::Finish:
    case ApiKind::UnbindService:
    case ApiKind::UnregisterReceiver:
    case ApiKind::RemoveCallbacks:
      // Cancellation APIs spawn nothing; the CHB filter consumes them.
      return;
    case ApiKind::None:
      return;
    }
  }
};

} // namespace

ThreadForest threadify::threadify(const Program &P,
                                  const ThreadifyOptions &Options) {
  return ThreadifierImpl(P, Options).run();
}
