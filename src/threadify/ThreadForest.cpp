//===- threadify/ThreadForest.cpp - Modeled threads --------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "threadify/ThreadForest.h"

using namespace nadroid;
using namespace nadroid::threadify;

const char *threadify::threadOriginName(ThreadOrigin Origin) {
  switch (Origin) {
  case ThreadOrigin::DummyMain:
    return "main";
  case ThreadOrigin::EntryCallback:
    return "EC";
  case ThreadOrigin::PostedCallback:
    return "PC";
  case ThreadOrigin::NativeThread:
    return "NT";
  }
  return "?";
}

std::string ModeledThread::label() const {
  if (Origin == ThreadOrigin::DummyMain)
    return "main";
  std::string Result = threadOriginName(Origin);
  Result += " ";
  Result += Callback->name();
  Result += "@";
  Result += Callback->parent()->name();
  return Result;
}

ThreadForest::ThreadForest() {
  Threads.push_back(std::make_unique<ModeledThread>(
      0, ThreadOrigin::DummyMain, android::CallbackKind::None, nullptr,
      nullptr, nullptr));
  Root = Threads.back().get();
}

ModeledThread *ThreadForest::create(ThreadOrigin Origin,
                                    android::CallbackKind CbKind,
                                    ir::Method *Callback,
                                    ModeledThread *Parent,
                                    const ir::CallStmt *SpawnSite) {
  Threads.push_back(std::make_unique<ModeledThread>(
      static_cast<unsigned>(Threads.size()), Origin, CbKind, Callback, Parent,
      SpawnSite));
  return Threads.back().get();
}

bool ThreadForest::isAncestorOrSelf(const ModeledThread *Ancestor,
                                    const ModeledThread *T) const {
  for (const ModeledThread *Cur = T; Cur; Cur = Cur->parent())
    if (Cur == Ancestor)
      return true;
  return false;
}

std::string ThreadForest::lineage(const ModeledThread *T) const {
  std::vector<const ModeledThread *> Chain;
  for (const ModeledThread *Cur = T; Cur; Cur = Cur->parent())
    Chain.push_back(Cur);
  std::string Result;
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    if (!Result.empty())
      Result += " > ";
    Result += (*It)->label();
  }
  return Result;
}

unsigned ThreadForest::entryCallbackCount() const {
  unsigned Count = 0;
  for (const auto &T : Threads)
    if (T->origin() == ThreadOrigin::EntryCallback)
      ++Count;
  return Count;
}

unsigned ThreadForest::postedCallbackCount() const {
  unsigned Count = 0;
  for (const auto &T : Threads)
    if (T->origin() == ThreadOrigin::PostedCallback)
      ++Count;
  return Count;
}

unsigned ThreadForest::threadCount() const {
  unsigned Count = 0;
  for (const auto &T : Threads)
    if (T->origin() == ThreadOrigin::DummyMain ||
        T->origin() == ThreadOrigin::NativeThread)
      ++Count;
  return Count;
}
