//===- filters/Filters.cpp - The nine filters of §6 ---------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "filters/Filter.h"

using namespace nadroid;
using namespace nadroid::filters;
using namespace nadroid::ir;
using android::ApiKind;
using android::CallbackKind;
using race::ThreadPair;
using race::UafWarning;
using threadify::ModeledThread;
using threadify::ThreadOrigin;

Filter::~Filter() = default;

namespace {

//===----------------------------------------------------------------------===//
// Sound filters (§6.1)
//===----------------------------------------------------------------------===//

/// MHB (§6.1.1): prune a pair when the use-thread must happen before the
/// free-thread — then no execution can order the free first.
class MhbFilter : public Filter {
public:
  FilterKind kind() const override { return FilterKind::MHB; }

  bool prunesPair(const UafWarning &W, const ThreadPair &TP,
                  FilterContext &Ctx) const override {
    const ModeledThread *Tu = TP.UseThread;
    const ModeledThread *Tf = TP.FreeThread;

    // MHB-Service: onServiceConnected always precedes
    // onServiceDisconnected of the same binding.
    if (Tu->callbackKind() == CallbackKind::ServiceConnect &&
        Tf->callbackKind() == CallbackKind::ServiceDisconn &&
        Tu->connectionInstance() != 0 &&
        Tu->connectionInstance() == Tf->connectionInstance())
      return true;

    // MHB-AsyncTask: onPreExecute < {doInBackground, onProgressUpdate} <
    // onPostExecute within one task instance.
    if (Tu->asyncInstance() != 0 &&
        Tu->asyncInstance() == Tf->asyncInstance() &&
        android::asyncTaskMustPrecede(Tu->callbackKind(),
                                      Tf->callbackKind()))
      return true;

    // MHB-Lifecycle: within one component, onCreate precedes every entry
    // callback and every entry callback precedes onDestroy. Applies to
    // entry callbacks only — a posted callback may still run after
    // onDestroy.
    if (Tu->origin() == ThreadOrigin::EntryCallback &&
        Tf->origin() == ThreadOrigin::EntryCallback &&
        Tu->component() && Tu->component() == Tf->component() &&
        android::lifecycleMustPrecede(Tu->callback()->name(),
                                      Tf->callback()->name()))
      return true;

    return false;
  }
};

/// IG (§6.1.2): a null-guarded use is safe when nothing can interleave
/// between the check and the dereference — same-looper callbacks are
/// mutually atomic; across threads a common lock is required.
class IgFilter : public Filter {
public:
  FilterKind kind() const override { return FilterKind::IG; }

  bool prunesPair(const UafWarning &W, const ThreadPair &TP,
                  FilterContext &Ctx) const override {
    bool Guarded =
        Ctx.options().DataflowGuards
            ? Ctx.nullness().isGuarded(W.Use)
            : Ctx.guards(W.Use->parentMethod()).isGuarded(W.Use);
    if (!Guarded)
      return false;
    return Ctx.atomicityHolds(W, TP);
  }
};

/// IA (§6.1.3): an allocation dominating the use within the same atomic
/// callback means no foreign free can leave null behind.
class IaFilter : public Filter {
public:
  FilterKind kind() const override { return FilterKind::IA; }

  bool prunesPair(const UafWarning &W, const ThreadPair &TP,
                  FilterContext &Ctx) const override {
    bool Protected =
        Ctx.options().DataflowGuards
            ? Ctx.nullness().isAllocProtected(W.Use)
            : Ctx.allocFlow(W.Use->parentMethod())
                      .ProtectedLoads.count(W.Use) != 0;
    if (!Protected)
      return false;
    return Ctx.atomicityHolds(W, TP);
  }
};

//===----------------------------------------------------------------------===//
// Unsound filters (§6.2)
//===----------------------------------------------------------------------===//

/// RHB (§6.2.1): careful apps re-allocate in onResume, so a free in
/// onPause cannot reach a UI callback's use. May-analysis on onResume
/// makes this unsound. The (free-callback, revive-callback, use-kind)
/// triples come from the framework spec's revive-window declarations —
/// the builtin spec carries the paper's single onPause/onResume/ui
/// window.
class RhbFilter : public Filter {
public:
  FilterKind kind() const override { return FilterKind::RHB; }

  bool prunesPair(const UafWarning &W, const ThreadPair &TP,
                  FilterContext &Ctx) const override {
    const ModeledThread *Tu = TP.UseThread;
    const ModeledThread *Tf = TP.FreeThread;
    if (Tf->origin() != ThreadOrigin::EntryCallback ||
        Tu->origin() != ThreadOrigin::EntryCallback)
      return false;
    if (!Tu->component() || Tu->component() != Tf->component())
      return false;
    // The verdict depends only on (use-thread, free-thread, field) —
    // never on the racy statements — so pairs shared by many warnings
    // resolve from the HbQuery memo after the first evaluation.
    return Ctx.hbQuery().fieldPairVerdict(Tu, Tf, W.F, [&] {
      for (const android::FrameworkSpec::ReviveWindow &RW :
           android::FrameworkSpec::builtin().reviveWindows()) {
        if (Tf->callback()->name() != RW.FreeCallback)
          continue;
        // Use callbacks of the window's kind only: a paused activity
        // takes no input, but system events (GPS, sensors) keep firing,
        // so the revive callback's re-allocation guarantees nothing for
        // them.
        if (Tu->callbackKind() != RW.UseKind)
          continue;
        Method *Revive = Tf->component()->findMethod(RW.ReviveCallback);
        if (!Revive)
          continue;
        if (Ctx.allocFlow(Revive).MayAllocFields.count(W.F) != 0)
          return true;
      }
      return false;
    });
  }
};

/// CHB (§6.2.1): a cancellation API reachable from the free callback
/// forbids future runs of the covered callbacks, so any covered use must
/// have preceded the free. Path-insensitive — the filter fires even when
/// the cancel sits on a rare error path (the paper's §8.6 false-negative
/// source).
class ChbFilter : public Filter {
public:
  FilterKind kind() const override { return FilterKind::CHB; }

  bool prunesPair(const UafWarning &W, const ThreadPair &TP,
                  FilterContext &Ctx) const override {
    const ModeledThread *Tu = TP.UseThread;
    const ModeledThread *Tf = TP.FreeThread;
    // covers() never reads the warning — the verdict is a pure function
    // of the thread pair, so it memoizes in HbQuery's pair-slot cache.
    return Ctx.hbQuery().pairVerdict(
        analysis::HbQuery::SlotChb, Tu, Tf, [&] {
          for (const analysis::CancelInfo &C : Ctx.cancels(Tf->callback()))
            if (covers(C, Tu, Tf, Ctx))
              return true;
          return false;
        });
  }

private:
  static bool covers(const analysis::CancelInfo &C, const ModeledThread *Tu,
                     const ModeledThread *Tf, FilterContext &Ctx) {
    switch (C.Kind) {
    case ApiKind::Finish:
      // No entry callback of the finished activity runs after finish()
      // — except onDestroy, which finish() itself triggers.
      return Tu->origin() == ThreadOrigin::EntryCallback &&
             Tu->component() == C.Target &&
             Tu->callback()->name() != "onDestroy";
    case ApiKind::UnbindService: {
      CallbackKind K = Tu->callbackKind();
      if (K != CallbackKind::ServiceConnect &&
          K != CallbackKind::ServiceDisconn)
        return false;
      if (C.Target)
        return Tu->callback()->parent() == C.Target;
      return Tu->component() == Tf->component();
    }
    case ApiKind::UnregisterReceiver: {
      if (Tu->callbackKind() != CallbackKind::Receive ||
          Tu->origin() != ThreadOrigin::PostedCallback)
        return false;
      if (C.Target)
        return Tu->callback()->parent() == C.Target;
      return Tu->component() == Tf->component();
    }
    case ApiKind::RemoveCallbacks: {
      if (Tu->callbackKind() == CallbackKind::HandleMessage)
        return Tu->callback()->parent() == C.Target;
      if (Tu->callbackKind() == CallbackKind::RunnableRun)
        return Ctx.posterHandlerClass(Tu) == C.Target && C.Target;
      return false;
    }
    default:
      return false;
    }
  }
};

/// PHB (§6.2.1): a poster callback completes before its postee runs on
/// the same looper, ordering every operation of the two callbacks.
/// Unsound when two runtime instances of the poster share the field.
/// The transitive same-looper post relation is precomputed in HbQuery's
/// matrix, so the former per-pair parent-chain walk is two bit tests.
class PhbFilter : public Filter {
public:
  FilterKind kind() const override { return FilterKind::PHB; }

  bool prunesPair(const UafWarning &W, const ThreadPair &TP,
                  FilterContext &Ctx) const override {
    const analysis::HbQuery &HQ = Ctx.hbQuery();
    return HQ.postedAfter(TP.UseThread, TP.FreeThread) ||
           HQ.postedAfter(TP.FreeThread, TP.UseThread);
  }
};

/// MA (§6.2.2): IA with the unsound assumption that custom getters never
/// return null.
class MaFilter : public Filter {
public:
  FilterKind kind() const override { return FilterKind::MA; }

  bool prunesPair(const UafWarning &W, const ThreadPair &TP,
                  FilterContext &Ctx) const override {
    if (!Ctx.allocFlowMA(W.Use->parentMethod()).ProtectedLoads.count(W.Use))
      return false;
    return Ctx.atomicityHolds(W, TP);
  }
};

/// UR (§6.2.3): a loaded value that only flows into returns, call
/// arguments, or null comparisons is a benign use.
class UrFilter : public Filter {
public:
  FilterKind kind() const override { return FilterKind::UR; }

  bool prunesPair(const UafWarning &W, const ThreadPair &TP,
                  FilterContext &Ctx) const override {
    const auto &Summaries = Ctx.consumers(W.Use->parentMethod());
    auto It = Summaries.find(W.Use);
    if (It == Summaries.end())
      return false;
    return It->second.isReturnOrCompareOnly();
  }
};

/// TT (§6.2.4): races purely between native threads are conventional
/// multithreaded races outside nAdroid's Android-specific scope.
class TtFilter : public Filter {
public:
  FilterKind kind() const override { return FilterKind::TT; }

  bool prunesPair(const UafWarning &W, const ThreadPair &TP,
                  FilterContext &Ctx) const override {
    return TP.UseThread->isNative() && TP.FreeThread->isNative();
  }
};

} // namespace

std::unique_ptr<Filter> filters::makeFilter(FilterKind Kind) {
  switch (Kind) {
  case FilterKind::MHB:
    return std::make_unique<MhbFilter>();
  case FilterKind::IG:
    return std::make_unique<IgFilter>();
  case FilterKind::IA:
    return std::make_unique<IaFilter>();
  case FilterKind::RHB:
    return std::make_unique<RhbFilter>();
  case FilterKind::CHB:
    return std::make_unique<ChbFilter>();
  case FilterKind::PHB:
    return std::make_unique<PhbFilter>();
  case FilterKind::MA:
    return std::make_unique<MaFilter>();
  case FilterKind::UR:
    return std::make_unique<UrFilter>();
  case FilterKind::TT:
    return std::make_unique<TtFilter>();
  }
  return nullptr;
}
