//===- filters/Engine.cpp - Filter pipeline orchestration ----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "filters/Engine.h"

#include <algorithm>
#include <chrono>

using namespace nadroid;
using namespace nadroid::filters;
using race::ThreadPair;
using race::UafWarning;

FilterEngine::FilterEngine(FilterContext &Ctx) : Ctx(Ctx) {
  for (FilterKind Kind : allFilterKinds())
    Instances.emplace(Kind, makeFilter(Kind));
}

const Filter &FilterEngine::filter(FilterKind Kind) const {
  return *Instances.at(Kind);
}

bool FilterEngine::timedPrune(FilterKind Kind, const UafWarning &W,
                              const ThreadPair &TP) {
  auto Start = std::chrono::steady_clock::now();
  bool Pruned = filter(Kind).prunesPair(W, TP, Ctx);
  auto Nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
  FilterNanos[static_cast<size_t>(Kind)].fetch_add(
      static_cast<uint64_t>(Nanos), std::memory_order_relaxed);
  return Pruned;
}

std::array<double, NumFilterKinds> FilterEngine::filterSecondsAll() const {
  std::array<double, NumFilterKinds> Out{};
  for (size_t I = 0; I < NumFilterKinds; ++I)
    Out[I] = FilterNanos[I].load(std::memory_order_relaxed) * 1e-9;
  return Out;
}

bool FilterEngine::pairPrunedBy(const UafWarning &W, const ThreadPair &TP,
                                const std::vector<FilterKind> &Kinds) {
  for (FilterKind Kind : Kinds)
    if (timedPrune(Kind, W, TP))
      return true;
  return false;
}

std::vector<bool>
FilterEngine::pruneMask(const std::vector<UafWarning> &Warnings,
                        const std::vector<FilterKind> &Kinds) {
  std::vector<bool> Mask(Warnings.size(), false);
  for (size_t I = 0; I < Warnings.size(); ++I) {
    const UafWarning &W = Warnings[I];
    bool AllPruned = true;
    for (const ThreadPair &TP : W.Pairs) {
      if (!pairPrunedBy(W, TP, Kinds)) {
        AllPruned = false;
        break;
      }
    }
    Mask[I] = AllPruned && !W.Pairs.empty();
  }
  return Mask;
}

PipelineResult FilterEngine::run(const std::vector<UafWarning> &Warnings,
                                 support::ThreadPool *Pool,
                                 const support::Deadline *D) {
  PipelineResult Result;
  Result.Verdicts.resize(Warnings.size());

  std::vector<FilterKind> Sound = soundFilterKinds();
  std::vector<FilterKind> Unsound = unsoundFilterKinds();

  // The whole-program lazy analyses the filters consult are materialized
  // before fanning out so the parallel tasks only ever read them.
  if (Pool && Ctx.options().DataflowGuards && !Warnings.empty())
    Ctx.nullness();
  if (Pool && Ctx.options().Refute && !Warnings.empty())
    Ctx.refuter();
  if (Pool && Ctx.options().RefuteHistory && !Warnings.empty())
    Ctx.historyRefuter();

  const std::vector<FilterKind> MayHb = mayHbFilterKinds();
  auto isMayHb = [&MayHb](FilterKind Kind) {
    return std::find(MayHb.begin(), MayHb.end(), Kind) != MayHb.end();
  };

  // Each task touches only Warnings[I] and Verdicts[I]; shared state is
  // confined to the context's internally-synchronized caches.
  auto Evaluate = [&](size_t I) {
    // Safe point: a task that never starts leaves its Verdicts slot
    // default-constructed, and the whole Result is discarded when the
    // rethrown DeadlineExceeded unwinds run().
    if (D)
      D->check("verdicts");
    const UafWarning &W = Warnings[I];
    WarningVerdict &V = Result.Verdicts[I];

    // Sound stage: keep the pairs no sound filter prunes. A sound
    // decision is proved by construction (§6.1 holds unconditionally).
    for (const ThreadPair &TP : W.Pairs) {
      bool Pruned = false;
      FilterKind First = FilterKind::MHB;
      for (FilterKind Kind : Sound) {
        if (timedPrune(Kind, W, TP)) {
          V.FiredFilters.insert(Kind);
          if (!Pruned)
            First = Kind;
          Pruned = true;
        }
      }
      if (!Pruned) {
        V.PairsAfterSound.push_back(TP);
        continue;
      }
      V.Decisions.push_back({TP, First, Provenance::Proved, {}});
    }
    if (V.PairsAfterSound.empty()) {
      V.StageReached = WarningVerdict::Stage::PrunedBySound;
      return;
    }

    // Unsound stage on the sound survivors. When the refutation engine
    // is on, each may-HB-pruned pair is either proved ordered (sound
    // suppression with a proof chain) or demoted to assumed (with the
    // counterexample history); the pruning outcome itself never changes.
    for (const ThreadPair &TP : V.PairsAfterSound) {
      bool Pruned = false;
      FilterKind First = FilterKind::MHB;
      for (FilterKind Kind : Unsound) {
        if (timedPrune(Kind, W, TP)) {
          V.FiredFilters.insert(Kind);
          if (!Pruned)
            First = Kind;
          Pruned = true;
        }
      }
      if (!Pruned) {
        V.PairsRemaining.push_back(TP);
        continue;
      }
      PairDecision D{TP, First, Provenance::Heuristic, {}};
      if (Ctx.options().Refute && isMayHb(First)) {
        analysis::HbRefutation Ref = Ctx.refuter().refute(
            W.Use, W.Free, W.F, TP.UseThread, TP.FreeThread);
        D.Prov = Ref.Ordered ? Provenance::Proved : Provenance::Assumed;
        D.Evidence =
            Ref.Ordered ? std::move(Ref.ProofChain) : std::move(Ref.Counterexample);
        // Tier 2: re-attack each Assumed pair with the history refuter's
        // counterexample-guided refinement. Still outcome-preserving —
        // only the provenance (and its evidence) can improve.
        if (D.Prov == Provenance::Assumed && Ctx.options().RefuteHistory) {
          analysis::HistoryRefutation H = Ctx.historyRefuter().refine(
              W.Use, W.Free, W.F, TP.UseThread, TP.FreeThread);
          if (H.Ordered) {
            D.Prov = Provenance::ProvedV2;
            D.Evidence = std::move(H.ObligationChain);
          } else if (!H.Witness.empty()) {
            D.Evidence = std::move(H.Witness);
          }
        }
      }
      V.Decisions.push_back(std::move(D));
    }
    V.StageReached = V.PairsRemaining.empty()
                         ? WarningVerdict::Stage::PrunedByUnsound
                         : WarningVerdict::Stage::Remaining;
  };

  if (Pool)
    Pool->parallelFor(Warnings.size(), Evaluate);
  else
    for (size_t I = 0; I < Warnings.size(); ++I)
      Evaluate(I);

  // Fold the counters serially so they never depend on task order.
  for (const WarningVerdict &V : Result.Verdicts) {
    if (V.StageReached != WarningVerdict::Stage::PrunedBySound)
      ++Result.RemainingAfterSound;
    if (V.StageReached == WarningVerdict::Stage::Remaining)
      ++Result.RemainingAfterUnsound;
  }
  return Result;
}
