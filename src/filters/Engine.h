//===- filters/Engine.h - Filter pipeline orchestration ---------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orchestrates filters over a warning list, in two modes:
///
///  * pruneMask — apply an arbitrary filter subset together (a pair is
///    pruned when any enabled filter prunes it; a warning when every pair
///    is). Figure 5 evaluates each filter independently with this.
///  * run — the full pipeline: sound filters, then unsound filters on the
///    survivors, with per-warning attribution of which filters fired —
///    Table 1's "remaining after sound/unsound" columns.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_FILTERS_ENGINE_H
#define NADROID_FILTERS_ENGINE_H

#include "filters/Filter.h"
#include "support/Deadline.h"
#include "support/ThreadPool.h"

#include <array>
#include <atomic>
#include <set>

namespace nadroid::filters {

/// One pruned pair with its attribution: the first filter (in pipeline
/// order) that pruned it, how much evidence stands behind that decision,
/// and — when the refutation engine ran — the proof chain (Proved) or
/// counterexample history (Assumed).
struct PairDecision {
  race::ThreadPair Pair;
  FilterKind By = FilterKind::MHB;
  Provenance Prov = Provenance::Heuristic;
  std::vector<std::string> Evidence;
};

/// Per-warning pipeline outcome.
struct WarningVerdict {
  enum class Stage : uint8_t {
    PrunedBySound,   ///< no pair survived the sound filters
    PrunedByUnsound, ///< survived sound, no pair survived unsound
    Remaining,       ///< at least one pair survived everything
  };

  Stage StageReached = Stage::Remaining;
  /// Filters that pruned at least one pair of this warning.
  std::set<FilterKind> FiredFilters;
  /// Pairs surviving the sound stage.
  std::vector<race::ThreadPair> PairsAfterSound;
  /// Pairs surviving both stages (nonempty iff Remaining).
  std::vector<race::ThreadPair> PairsRemaining;
  /// One decision per pruned pair, in pruning order (sound-stage prunes
  /// first, then unsound-stage prunes). Sound decisions are Proved by
  /// construction; may-HB decisions are Heuristic unless
  /// FilterOptions::Refute upgraded or demoted them.
  std::vector<PairDecision> Decisions;

  /// The recorded decision for \p TP, or nullptr when the pair survived.
  const PairDecision *decisionFor(const race::ThreadPair &TP) const {
    for (const PairDecision &D : Decisions)
      if (D.Pair == TP)
        return &D;
    return nullptr;
  }
};

/// Full-pipeline result.
struct PipelineResult {
  std::vector<WarningVerdict> Verdicts; // parallel to the warning list
  unsigned RemainingAfterSound = 0;
  unsigned RemainingAfterUnsound = 0;
};

/// Applies filters; owns the filter instances, shares one context.
class FilterEngine {
public:
  explicit FilterEngine(FilterContext &Ctx);

  /// True when any filter in \p Kinds prunes pair \p TP of \p W.
  bool pairPrunedBy(const race::UafWarning &W, const race::ThreadPair &TP,
                    const std::vector<FilterKind> &Kinds);

  /// Warning-level mask: Mask[i] is true when warning i is fully pruned
  /// by \p Kinds applied together.
  std::vector<bool> pruneMask(const std::vector<race::UafWarning> &Warnings,
                              const std::vector<FilterKind> &Kinds);

  /// The full sound-then-unsound pipeline with attribution. With a
  /// \p Pool, per-warning verdicts are evaluated concurrently; each task
  /// writes only its own slot of the index-parallel Verdicts vector and
  /// the summary counters are folded serially afterwards, so the result
  /// is identical to the serial run, byte for byte. \p D (not owned, may
  /// be null) is polled before each warning's evaluation; on expiry the
  /// DeadlineExceeded propagates out of run() once the in-flight tasks
  /// drain.
  PipelineResult run(const std::vector<race::UafWarning> &Warnings,
                     support::ThreadPool *Pool = nullptr,
                     const support::Deadline *D = nullptr);

  /// Seconds each filter kind has spent inside prunesPair since this
  /// engine was constructed, indexed by FilterKind value. Accumulated
  /// across every run()/pruneMask() call (callers wanting one sweep's
  /// share take a before/after delta) and across pool lanes. A lazy
  /// analysis a filter materializes on first touch (e.g. IG building
  /// nullness in a serial run) is charged to that filter.
  std::array<double, NumFilterKinds> filterSecondsAll() const;

private:
  FilterContext &Ctx;
  std::map<FilterKind, std::unique_ptr<Filter>> Instances;

  /// Per-kind self-time in nanoseconds; relaxed atomics, since the
  /// parallel verdict sweep charges them from every lane.
  std::array<std::atomic<uint64_t>, NumFilterKinds> FilterNanos{};

  /// prunesPair with the verdict's wall time charged to Kind's counter.
  bool timedPrune(FilterKind Kind, const race::UafWarning &W,
                  const race::ThreadPair &TP);

  /// Thread-safe: Instances is fully built in the constructor and the
  /// filters themselves are stateless.
  const Filter &filter(FilterKind Kind) const;
};

} // namespace nadroid::filters

#endif // NADROID_FILTERS_ENGINE_H
