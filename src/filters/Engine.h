//===- filters/Engine.h - Filter pipeline orchestration ---------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orchestrates filters over a warning list, in two modes:
///
///  * pruneMask — apply an arbitrary filter subset together (a pair is
///    pruned when any enabled filter prunes it; a warning when every pair
///    is). Figure 5 evaluates each filter independently with this.
///  * run — the full pipeline: sound filters, then unsound filters on the
///    survivors, with per-warning attribution of which filters fired —
///    Table 1's "remaining after sound/unsound" columns.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_FILTERS_ENGINE_H
#define NADROID_FILTERS_ENGINE_H

#include "filters/Filter.h"
#include "support/ThreadPool.h"

#include <set>

namespace nadroid::filters {

/// Per-warning pipeline outcome.
struct WarningVerdict {
  enum class Stage : uint8_t {
    PrunedBySound,   ///< no pair survived the sound filters
    PrunedByUnsound, ///< survived sound, no pair survived unsound
    Remaining,       ///< at least one pair survived everything
  };

  Stage StageReached = Stage::Remaining;
  /// Filters that pruned at least one pair of this warning.
  std::set<FilterKind> FiredFilters;
  /// Pairs surviving the sound stage.
  std::vector<race::ThreadPair> PairsAfterSound;
  /// Pairs surviving both stages (nonempty iff Remaining).
  std::vector<race::ThreadPair> PairsRemaining;
};

/// Full-pipeline result.
struct PipelineResult {
  std::vector<WarningVerdict> Verdicts; // parallel to the warning list
  unsigned RemainingAfterSound = 0;
  unsigned RemainingAfterUnsound = 0;
};

/// Applies filters; owns the filter instances, shares one context.
class FilterEngine {
public:
  explicit FilterEngine(FilterContext &Ctx);

  /// True when any filter in \p Kinds prunes pair \p TP of \p W.
  bool pairPrunedBy(const race::UafWarning &W, const race::ThreadPair &TP,
                    const std::vector<FilterKind> &Kinds);

  /// Warning-level mask: Mask[i] is true when warning i is fully pruned
  /// by \p Kinds applied together.
  std::vector<bool> pruneMask(const std::vector<race::UafWarning> &Warnings,
                              const std::vector<FilterKind> &Kinds);

  /// The full sound-then-unsound pipeline with attribution. With a
  /// \p Pool, per-warning verdicts are evaluated concurrently; each task
  /// writes only its own slot of the index-parallel Verdicts vector and
  /// the summary counters are folded serially afterwards, so the result
  /// is identical to the serial run, byte for byte.
  PipelineResult run(const std::vector<race::UafWarning> &Warnings,
                     support::ThreadPool *Pool = nullptr);

private:
  FilterContext &Ctx;
  std::map<FilterKind, std::unique_ptr<Filter>> Instances;

  /// Thread-safe: Instances is fully built in the constructor and the
  /// filters themselves are stateless.
  const Filter &filter(FilterKind Kind) const;
};

} // namespace nadroid::filters

#endif // NADROID_FILTERS_ENGINE_H
