//===- filters/FilterContext.cpp - Shared filter state ------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "filters/Filter.h"

using namespace nadroid;
using namespace nadroid::filters;
using namespace nadroid::ir;
using analysis::MethodCtx;
using analysis::ObjectId;
using threadify::ModeledThread;

const char *filters::filterKindName(FilterKind Kind) {
  switch (Kind) {
  case FilterKind::MHB:
    return "MHB";
  case FilterKind::IG:
    return "IG";
  case FilterKind::IA:
    return "IA";
  case FilterKind::RHB:
    return "RHB";
  case FilterKind::CHB:
    return "CHB";
  case FilterKind::PHB:
    return "PHB";
  case FilterKind::MA:
    return "MA";
  case FilterKind::UR:
    return "UR";
  case FilterKind::TT:
    return "TT";
  }
  return "?";
}

bool filters::isSoundFilter(FilterKind Kind) {
  switch (Kind) {
  case FilterKind::MHB:
  case FilterKind::IG:
  case FilterKind::IA:
    return true;
  default:
    return false;
  }
}

std::vector<FilterKind> filters::allFilterKinds() {
  return {FilterKind::MHB, FilterKind::IG,  FilterKind::IA,
          FilterKind::RHB, FilterKind::CHB, FilterKind::PHB,
          FilterKind::MA,  FilterKind::UR,  FilterKind::TT};
}

std::vector<FilterKind> filters::soundFilterKinds() {
  return {FilterKind::MHB, FilterKind::IG, FilterKind::IA};
}

std::vector<FilterKind> filters::unsoundFilterKinds() {
  return {FilterKind::RHB, FilterKind::CHB, FilterKind::PHB,
          FilterKind::MA,  FilterKind::UR,  FilterKind::TT};
}

std::vector<FilterKind> filters::mayHbFilterKinds() {
  return {FilterKind::RHB, FilterKind::CHB, FilterKind::PHB};
}

FilterContext::FilterContext(const Program &P,
                             const threadify::ThreadForest &Forest,
                             const analysis::PointsToAnalysis &PTA,
                             const analysis::ThreadReach &Reach,
                             const android::ApiIndex &Apis,
                             FilterOptions Options)
    : P(P), Forest(Forest), PTA(PTA), Reach(Reach), Apis(Apis), Opts(Options),
      Locks(PTA), Cancel(P, Apis) {}

const analysis::NullnessAnalysis &FilterContext::nullness() {
  if (!Nullness)
    Nullness = std::make_unique<analysis::NullnessAnalysis>(P);
  return *Nullness;
}

const analysis::GuardAnalysis &FilterContext::guards(const Method *M) {
  auto It = GuardCache.find(M);
  if (It != GuardCache.end())
    return It->second;
  return GuardCache.emplace(M, analysis::GuardAnalysis(*M)).first->second;
}

const analysis::AllocFlowResult &FilterContext::allocFlow(const Method *M) {
  auto It = AllocCache.find(M);
  if (It != AllocCache.end())
    return It->second;
  return AllocCache
      .emplace(M, analysis::analyzeAllocFlow(*M,
                                             /*TreatCallResultAsAlloc=*/false))
      .first->second;
}

const analysis::AllocFlowResult &
FilterContext::allocFlowMA(const Method *M) {
  auto It = AllocMACache.find(M);
  if (It != AllocMACache.end())
    return It->second;
  return AllocMACache
      .emplace(M, analysis::analyzeAllocFlow(*M,
                                             /*TreatCallResultAsAlloc=*/true))
      .first->second;
}

const std::map<const LoadStmt *, LoadConsumers> &
FilterContext::consumers(const Method *M) {
  auto It = ConsumerCache.find(M);
  if (It != ConsumerCache.end())
    return It->second;
  return ConsumerCache.emplace(M, computeLoadConsumers(*M)).first->second;
}

const std::vector<analysis::CancelInfo> &FilterContext::cancels(Method *M) {
  return Cancel.cancelsFrom(M);
}

std::set<ObjectId> FilterContext::locksFor(const Stmt *S,
                                           const ModeledThread *T) {
  std::set<ObjectId> Result;
  for (const MethodCtx &Ctx : Reach.contextsOf(T)) {
    if (Ctx.M != S->parentMethod())
      continue;
    std::set<ObjectId> Held = Locks.locksHeldAt(S, Ctx);
    Result.insert(Held.begin(), Held.end());
  }
  return Result;
}

bool FilterContext::atomicityHolds(const race::UafWarning &W,
                                   const race::ThreadPair &TP) {
  // Same-looper callbacks are mutually atomic; callbacks of *different*
  // loopers are not (§8.1's multi-looper caveat).
  if (TP.UseThread->onLooper() && TP.FreeThread->onLooper() &&
      TP.UseThread->looperId() == TP.FreeThread->looperId())
    return true;
  std::set<ObjectId> UseLocks = locksFor(W.Use, TP.UseThread);
  if (UseLocks.empty())
    return false;
  std::set<ObjectId> FreeLocks = locksFor(W.Free, TP.FreeThread);
  for (ObjectId Id : UseLocks)
    if (FreeLocks.count(Id))
      return true;
  return false;
}

Clazz *FilterContext::posterHandlerClass(const ModeledThread *T) {
  const CallStmt *Spawn = T->spawnSite();
  if (!Spawn)
    return nullptr;
  return inferLocalClasses(*Spawn->parentMethod(), Spawn->recv())
      .uniqueClass();
}
