//===- filters/FilterContext.cpp - Shared filter state ------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "filters/Filter.h"

using namespace nadroid;
using namespace nadroid::filters;
using namespace nadroid::ir;
using analysis::MethodCtx;
using analysis::ObjectId;
using threadify::ModeledThread;

const char *filters::filterKindName(FilterKind Kind) {
  switch (Kind) {
  case FilterKind::MHB:
    return "MHB";
  case FilterKind::IG:
    return "IG";
  case FilterKind::IA:
    return "IA";
  case FilterKind::RHB:
    return "RHB";
  case FilterKind::CHB:
    return "CHB";
  case FilterKind::PHB:
    return "PHB";
  case FilterKind::MA:
    return "MA";
  case FilterKind::UR:
    return "UR";
  case FilterKind::TT:
    return "TT";
  }
  return "?";
}

bool filters::isSoundFilter(FilterKind Kind) {
  switch (Kind) {
  case FilterKind::MHB:
  case FilterKind::IG:
  case FilterKind::IA:
    return true;
  default:
    return false;
  }
}

std::vector<FilterKind> filters::allFilterKinds() {
  return {FilterKind::MHB, FilterKind::IG,  FilterKind::IA,
          FilterKind::RHB, FilterKind::CHB, FilterKind::PHB,
          FilterKind::MA,  FilterKind::UR,  FilterKind::TT};
}

std::vector<FilterKind> filters::soundFilterKinds() {
  return {FilterKind::MHB, FilterKind::IG, FilterKind::IA};
}

std::vector<FilterKind> filters::unsoundFilterKinds() {
  return {FilterKind::RHB, FilterKind::CHB, FilterKind::PHB,
          FilterKind::MA,  FilterKind::UR,  FilterKind::TT};
}

std::vector<FilterKind> filters::mayHbFilterKinds() {
  return {FilterKind::RHB, FilterKind::CHB, FilterKind::PHB};
}

const char *filters::provenanceName(Provenance Prov) {
  switch (Prov) {
  case Provenance::Heuristic:
    return "heuristic";
  case Provenance::Assumed:
    return "assumed";
  case Provenance::Proved:
    return "proved";
  case Provenance::ProvedV2:
    return "proved-v2";
  }
  return "?";
}

FilterContext::FilterContext(const Program &P,
                             const threadify::ThreadForest &Forest,
                             const analysis::PointsToAnalysis &PTA,
                             const analysis::ThreadReach &Reach,
                             const android::ApiIndex &Apis,
                             FilterOptions Options)
    : FilterContext(P, Forest, PTA, Reach, Apis, Options, SharedAnalyses{}) {}

FilterContext::FilterContext(const Program &P,
                             const threadify::ThreadForest &Forest,
                             const analysis::PointsToAnalysis &PTA,
                             const analysis::ThreadReach &Reach,
                             const android::ApiIndex &Apis,
                             FilterOptions Options, SharedAnalyses External)
    : P(P), Forest(Forest), PTA(PTA), Reach(Reach), Apis(Apis), Opts(Options),
      Shared(std::move(External)) {
  // Normalize: any analysis the caller did not share is built and owned
  // here, so the accessors below never have to distinguish the two modes.
  if (!Shared.Locks) {
    OwnLocks = std::make_unique<analysis::LocksetAnalysis>(PTA);
    Shared.Locks = OwnLocks.get();
  }
  if (!Shared.Cancel) {
    OwnCancel = std::make_unique<analysis::CancelReach>(P, Apis);
    Shared.Cancel = OwnCancel.get();
  }
  if (!Shared.Guards) {
    OwnGuards = std::make_unique<analysis::MethodGuardCache>();
    Shared.Guards = OwnGuards.get();
  }
  if (!Shared.Alloc) {
    OwnAlloc = std::make_unique<analysis::MethodAllocFlowCache>();
    Shared.Alloc = OwnAlloc.get();
  }
  if (!Shared.Consumers) {
    OwnConsumers = std::make_unique<analysis::MethodConsumersCache>();
    Shared.Consumers = OwnConsumers.get();
  }
  if (!Shared.Cfgs) {
    OwnCfgs = std::make_unique<analysis::MethodCfgCache>();
    Shared.Cfgs = OwnCfgs.get();
  }
  if (!Shared.Nullness)
    Shared.Nullness = [this]() -> const analysis::NullnessAnalysis & {
      OwnNullness = std::make_unique<analysis::NullnessAnalysis>(this->P);
      return *OwnNullness;
    };
  if (!Shared.Refuter)
    Shared.Refuter = [this]() -> const analysis::HbRefuter & {
      // The escape analysis is only needed here, so the self-contained
      // fallback defers building it until the refuter is first used.
      if (!Shared.Escape) {
        OwnEscape = std::make_unique<analysis::EscapeAnalysis>(
            this->PTA, this->Reach, this->Forest);
        Shared.Escape = OwnEscape.get();
      }
      OwnRefuter = std::make_unique<analysis::HbRefuter>(
          this->P, this->Forest, this->PTA, this->Reach, *Shared.Cancel,
          *Shared.Escape, *Shared.Cfgs, *Shared.Alloc,
          /*D=*/nullptr, &this->hbQuery());
      return *OwnRefuter;
    };
  if (!Shared.HistoryRefuter)
    Shared.HistoryRefuter = [this]() -> const analysis::HistoryRefuter & {
      if (!Shared.Escape) {
        OwnEscape = std::make_unique<analysis::EscapeAnalysis>(
            this->PTA, this->Reach, this->Forest);
        Shared.Escape = OwnEscape.get();
      }
      OwnHistoryRefuter = std::make_unique<analysis::HistoryRefuter>(
          this->P, this->Forest, this->PTA, this->Reach, *Shared.Cancel,
          *Shared.Escape, *Shared.Cfgs, *Shared.Alloc,
          /*D=*/nullptr, &this->hbQuery());
      return *OwnHistoryRefuter;
    };
}

const analysis::HbQuery &FilterContext::hbQuery() {
  std::lock_guard<std::mutex> Lock(HbMu);
  if (!HbPtr) {
    if (Shared.Hb) {
      HbPtr = Shared.Hb;
    } else {
      OwnHb = std::make_unique<analysis::HbQuery>(P, Apis, Forest);
      HbPtr = OwnHb.get();
    }
  }
  return *HbPtr;
}

const analysis::NullnessAnalysis &FilterContext::nullness() {
  std::lock_guard<std::mutex> Lock(NullnessMu);
  if (!NullnessPtr)
    NullnessPtr = &Shared.Nullness();
  return *NullnessPtr;
}

const analysis::HbRefuter &FilterContext::refuter() {
  std::lock_guard<std::mutex> Lock(RefuterMu);
  if (!RefuterPtr)
    RefuterPtr = &Shared.Refuter();
  return *RefuterPtr;
}

const analysis::HistoryRefuter &FilterContext::historyRefuter() {
  std::lock_guard<std::mutex> Lock(HistoryRefuterMu);
  if (!HistoryRefuterPtr)
    HistoryRefuterPtr = &Shared.HistoryRefuter();
  return *HistoryRefuterPtr;
}

const analysis::GuardAnalysis &FilterContext::guards(const Method *M) {
  return Shared.Guards->get(*M);
}

const analysis::AllocFlowResult &FilterContext::allocFlow(const Method *M) {
  return Shared.Alloc->get(*M, /*TreatCallResultAsAlloc=*/false);
}

const analysis::AllocFlowResult &
FilterContext::allocFlowMA(const Method *M) {
  return Shared.Alloc->get(*M, /*TreatCallResultAsAlloc=*/true);
}

const std::map<const LoadStmt *, LoadConsumers> &
FilterContext::consumers(const Method *M) {
  return Shared.Consumers->get(*M);
}

const std::vector<analysis::CancelInfo> &FilterContext::cancels(Method *M) {
  return Shared.Cancel->cancelsFrom(M);
}

std::set<ObjectId> FilterContext::locksFor(const Stmt *S,
                                           const ModeledThread *T) {
  std::set<ObjectId> Result;
  for (const MethodCtx &Ctx : Reach.contextsOf(T)) {
    if (Ctx.M != S->parentMethod())
      continue;
    std::set<ObjectId> Held = Shared.Locks->locksHeldAt(S, Ctx);
    Result.insert(Held.begin(), Held.end());
  }
  return Result;
}

bool FilterContext::atomicityHolds(const race::UafWarning &W,
                                   const race::ThreadPair &TP) {
  // Same-looper callbacks are mutually atomic; callbacks of *different*
  // loopers are not (§8.1's multi-looper caveat).
  if (TP.UseThread->onLooper() && TP.FreeThread->onLooper() &&
      TP.UseThread->looperId() == TP.FreeThread->looperId())
    return true;
  std::set<ObjectId> UseLocks = locksFor(W.Use, TP.UseThread);
  if (UseLocks.empty())
    return false;
  std::set<ObjectId> FreeLocks = locksFor(W.Free, TP.FreeThread);
  for (ObjectId Id : UseLocks)
    if (FreeLocks.count(Id))
      return true;
  return false;
}

Clazz *FilterContext::posterHandlerClass(const ModeledThread *T) {
  const CallStmt *Spawn = T->spawnSite();
  if (!Spawn)
    return nullptr;
  return inferLocalClasses(*Spawn->parentMethod(), Spawn->recv())
      .uniqueClass();
}
