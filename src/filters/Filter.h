//===- filters/Filter.h - Filter interface and context ----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The filtering stage of §6. Each filter decides, per warning and per
/// (use-thread, free-thread) pair, whether that realization is false or
/// benign; a warning is pruned once every pair is pruned by some enabled
/// filter.
///
/// Sound filters (§6.1): MHB (must-happens-before), IG (if-guard with
/// atomicity), IA (intra-allocation with atomicity). Unsound filters
/// (§6.2): RHB, CHB, PHB (may-happens-before), MA (maybe-allocation), UR
/// (used-for-return), TT (thread-thread).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_FILTERS_FILTER_H
#define NADROID_FILTERS_FILTER_H

#include "analysis/AllocFlow.h"
#include "analysis/CancelReach.h"
#include "analysis/Escape.h"
#include "analysis/Guards.h"
#include "analysis/HbQuery.h"
#include "analysis/HbRefuter.h"
#include "analysis/HistoryRefuter.h"
#include "analysis/Lockset.h"
#include "analysis/MethodCaches.h"
#include "analysis/Nullness.h"
#include "analysis/PointsTo.h"
#include "analysis/ThreadReach.h"
#include "ir/LocalInfo.h"
#include "race/Warning.h"

#include <functional>
#include <memory>
#include <mutex>

namespace nadroid::filters {

enum class FilterKind : uint8_t { MHB, IG, IA, RHB, CHB, PHB, MA, UR, TT };

/// Number of FilterKind values — the bound for per-kind arrays (timing
/// counters, breakdown tables) indexed by the enum's underlying value.
constexpr size_t NumFilterKinds = 9;

const char *filterKindName(FilterKind Kind);
bool isSoundFilter(FilterKind Kind);

/// All filters in pipeline order (sound first).
std::vector<FilterKind> allFilterKinds();
/// The §6.1 sound set {MHB, IG, IA}.
std::vector<FilterKind> soundFilterKinds();
/// The §6.2 unsound set {RHB, CHB, PHB, MA, UR, TT}.
std::vector<FilterKind> unsoundFilterKinds();
/// The may-happens-before group Figure 5(b) reports as one bar.
std::vector<FilterKind> mayHbFilterKinds();

/// How much evidence stands behind one pruning decision. Sound filters
/// always decide with `Proved`; the may-HB heuristics (RHB/CHB/PHB)
/// decide with `Heuristic` unless the refutation engine upgraded the
/// suppression to `Proved` (an ordering proof exists) or demoted it to
/// `Assumed` (a counterexample history exists); pairs the tier-2 history
/// refuter subsequently discharges carry `ProvedV2` (a refined history
/// predicate admits no counterexample; the obligation chain is the
/// evidence); MA/UR/TT stay `Heuristic` always.
enum class Provenance : uint8_t { Heuristic, Assumed, Proved, ProvedV2 };

const char *provenanceName(Provenance Prov);

/// Knobs for the filter stage.
struct FilterOptions {
  /// When true (the default), IG and the allocation-dominance side of IA
  /// consume the inter-procedural nullness analysis (Nullness.h); when
  /// false, the paper-faithful syntactic analyses (Guards.cpp,
  /// AllocFlow.cpp) — kept as a cross-check mode, and what
  /// bench/ig_precision compares against.
  bool DataflowGuards = true;
  /// When true, every pair pruned by a may-HB heuristic (RHB/CHB/PHB) is
  /// re-examined by the HbRefuter: the suppression is either proved
  /// ordered (sound, with a proof chain) or demoted to `assumed` (with a
  /// counterexample history). Pruning outcomes are unchanged either way —
  /// provenance is metadata.
  bool Refute = false;
  /// When true (implies Refute), every pair tier 1 left `Assumed` is
  /// re-examined by the tier-2 HistoryRefuter's counterexample-guided
  /// refinement loop; discharged pairs upgrade to `ProvedV2`. Pruning
  /// outcomes are still unchanged — provenance is metadata.
  bool RefuteHistory = false;
};

/// Externally-owned analyses a FilterContext can borrow instead of
/// building its own — how the pipeline AnalysisManager shares one set of
/// analyses between the filter stage, the DEvA baseline, and --stats.
/// Any member left null is built and owned by the context itself.
struct SharedAnalyses {
  /// Lazy handle to the whole-program nullness analysis. Invoked at most
  /// once, on the context's first nullness() call, so a manager-backed
  /// handle keeps the analysis demand-built.
  std::function<const analysis::NullnessAnalysis &()> Nullness;
  /// Lazy handle to the happens-before refutation engine; invoked at
  /// most once, on the context's first refuter() call (only reached when
  /// options().Refute is set).
  std::function<const analysis::HbRefuter &()> Refuter;
  /// Lazy handle to the tier-2 history refuter; invoked at most once, on
  /// the context's first historyRefuter() call (only reached when
  /// options().RefuteHistory is set).
  std::function<const analysis::HistoryRefuter &()> HistoryRefuter;
  const analysis::LocksetAnalysis *Locks = nullptr;
  const analysis::CancelReach *Cancel = nullptr;
  /// The shared HB/reachability query layer (post matrix, pair-verdict
  /// memos, refuter skeletons). Null = the context builds its own.
  const analysis::HbQuery *Hb = nullptr;
  const analysis::EscapeAnalysis *Escape = nullptr;
  analysis::MethodCfgCache *Cfgs = nullptr;
  analysis::MethodGuardCache *Guards = nullptr;
  analysis::MethodAllocFlowCache *Alloc = nullptr;
  analysis::MethodConsumersCache *Consumers = nullptr;
};

/// Shared analysis handles plus per-method caches the filters consult.
/// Thread-compatible for queries: every lazily-built table behind the
/// accessors is internally synchronized, which is what lets the filter
/// engine evaluate verdicts for different warnings concurrently.
class FilterContext {
public:
  /// Self-contained form: the context builds and owns every lazy
  /// analysis itself.
  FilterContext(const ir::Program &P, const threadify::ThreadForest &Forest,
                const analysis::PointsToAnalysis &PTA,
                const analysis::ThreadReach &Reach,
                const android::ApiIndex &Apis,
                FilterOptions Options = FilterOptions{});

  /// Borrowing form: non-null members of \p External are used instead of
  /// self-built ones and must outlive the context.
  FilterContext(const ir::Program &P, const threadify::ThreadForest &Forest,
                const analysis::PointsToAnalysis &PTA,
                const analysis::ThreadReach &Reach,
                const android::ApiIndex &Apis, FilterOptions Options,
                SharedAnalyses External);

  const FilterOptions &options() const { return Opts; }

  const ir::Program &program() const { return P; }
  const threadify::ThreadForest &forest() const { return Forest; }
  const analysis::PointsToAnalysis &pointsTo() const { return PTA; }
  const analysis::ThreadReach &reach() const { return Reach; }
  const android::ApiIndex &apis() const { return Apis; }

  /// The whole-program nullness analysis (built on first use). IG/IA
  /// consult it when options().DataflowGuards is set.
  const analysis::NullnessAnalysis &nullness();

  /// The happens-before refutation engine (built on first use). The
  /// filter engine consults it for may-HB-pruned pairs when
  /// options().Refute is set.
  const analysis::HbRefuter &refuter();

  /// The tier-2 history refuter (built on first use). The filter engine
  /// consults it for tier-1-Assumed pairs when options().RefuteHistory
  /// is set.
  const analysis::HistoryRefuter &historyRefuter();

  /// Per-method guard facts (cached).
  const analysis::GuardAnalysis &guards(const ir::Method *M);
  /// Per-method must-allocation facts, IA mode (cached).
  const analysis::AllocFlowResult &allocFlow(const ir::Method *M);
  /// Per-method must-allocation facts, MA mode (getters count; cached).
  const analysis::AllocFlowResult &allocFlowMA(const ir::Method *M);
  /// Per-method load-consumer summaries (cached).
  const std::map<const ir::LoadStmt *, ir::LoadConsumers> &
  consumers(const ir::Method *M);
  /// Cancellations reachable from \p M (cached).
  const std::vector<analysis::CancelInfo> &cancels(ir::Method *M);

  /// The shared HB/reachability query layer (built on first use when not
  /// borrowed). RHB/CHB/PHB read their precomputed relations and pair
  /// memos through it.
  const analysis::HbQuery &hbQuery();

  /// Lock objects held at \p S across every context thread \p T reaches
  /// S's method under.
  std::set<analysis::ObjectId> locksFor(const ir::Stmt *S,
                                        const threadify::ModeledThread *T);

  /// §6.1.2's atomicity requirement: both sides are looper callbacks
  /// (callbacks of the single UI looper are atomic w.r.t. each other), or
  /// the two sites share a lock object.
  bool atomicityHolds(const race::UafWarning &W, const race::ThreadPair &TP);

  /// The Handler class a posted-Runnable thread was posted through, when
  /// resolvable (for CHB's removeCallbacksAndMessages scope).
  ir::Clazz *posterHandlerClass(const threadify::ModeledThread *T);

private:
  const ir::Program &P;
  const threadify::ThreadForest &Forest;
  const analysis::PointsToAnalysis &PTA;
  const analysis::ThreadReach &Reach;
  const android::ApiIndex &Apis;
  FilterOptions Opts;

  /// Normalized in the constructor: every member non-null afterwards,
  /// pointing either at External's analyses or at the Own* ones below.
  SharedAnalyses Shared;
  std::unique_ptr<analysis::LocksetAnalysis> OwnLocks;
  std::unique_ptr<analysis::CancelReach> OwnCancel;
  std::unique_ptr<analysis::NullnessAnalysis> OwnNullness;
  std::unique_ptr<analysis::EscapeAnalysis> OwnEscape;
  std::unique_ptr<analysis::MethodCfgCache> OwnCfgs;
  std::unique_ptr<analysis::MethodGuardCache> OwnGuards;
  std::unique_ptr<analysis::MethodAllocFlowCache> OwnAlloc;
  std::unique_ptr<analysis::MethodConsumersCache> OwnConsumers;
  std::unique_ptr<analysis::HbRefuter> OwnRefuter;
  std::unique_ptr<analysis::HistoryRefuter> OwnHistoryRefuter;
  std::unique_ptr<analysis::HbQuery> OwnHb;

  std::mutex HbMu;
  const analysis::HbQuery *HbPtr = nullptr;
  std::mutex NullnessMu;
  const analysis::NullnessAnalysis *NullnessPtr = nullptr;
  std::mutex RefuterMu;
  const analysis::HbRefuter *RefuterPtr = nullptr;
  std::mutex HistoryRefuterMu;
  const analysis::HistoryRefuter *HistoryRefuterPtr = nullptr;
};

/// One filter. Stateless; all data comes through the context.
class Filter {
public:
  virtual ~Filter();

  virtual FilterKind kind() const = 0;
  bool isSound() const { return isSoundFilter(kind()); }
  const char *name() const { return filterKindName(kind()); }

  /// True when this filter establishes that the (use-thread, free-thread)
  /// realization \p TP of \p W is false or benign.
  virtual bool prunesPair(const race::UafWarning &W,
                          const race::ThreadPair &TP,
                          FilterContext &Ctx) const = 0;
};

/// Instantiates the filter implementing \p Kind.
std::unique_ptr<Filter> makeFilter(FilterKind Kind);

} // namespace nadroid::filters

#endif // NADROID_FILTERS_FILTER_H
