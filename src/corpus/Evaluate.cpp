//===- corpus/Evaluate.cpp - Per-app evaluation harness ------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"

#include "interp/Interp.h"

using namespace nadroid;
using namespace nadroid::corpus;

const SeededBug *corpus::findSeed(const CorpusApp &App,
                                  const std::string &FieldQualifiedName) {
  for (const SeededBug &Seed : App.Seeds)
    if (Seed.FieldName == FieldQualifiedName)
      return &Seed;
  return nullptr;
}

AppEvaluation corpus::evaluateApp(const CorpusApp &App) {
  return evaluateApp(App, EvaluateOptions());
}

AppEvaluation corpus::evaluateApp(const CorpusApp &App,
                                  EvaluateOptions Opts) {
  AppEvaluation Eval;
  Eval.Name = App.Name;
  Eval.Train = App.Train;
  Eval.Paper = App.Paper;
  Eval.Loc = App.Prog->statementCount();

  Eval.Result = report::analyzeProgram(*App.Prog);
  report::NadroidResult &R = Eval.Result;

  Eval.Ec = R.Forest->entryCallbackCount();
  Eval.Pc = R.Forest->postedCallbackCount();
  Eval.T = R.Forest->threadCount();
  Eval.Potential = static_cast<unsigned>(R.warnings().size());
  Eval.AfterSound = R.Pipeline.RemainingAfterSound;
  Eval.AfterUnsound = R.Pipeline.RemainingAfterUnsound;

  interp::ExploreOptions InterpOpts;
  InterpOpts.Seed = 17;
  interp::ScheduleExplorer Explorer(*App.Prog, InterpOpts);

  for (size_t I : R.remainingIndices()) {
    const race::UafWarning &W = R.warnings()[I];
    const filters::WarningVerdict &V = R.Pipeline.Verdicts[I];
    report::PairType Type =
        report::classifyWarning(*R.Forest, V.PairsRemaining);
    ++Eval.RemainingByType[Type];

    const SeededBug *Seed = findSeed(App, W.F->qualifiedName());
    bool Harmful;
    if (Opts.RunInterpreter) {
      Harmful = Explorer.tryWitness(W.Use, W.Free, Opts.WitnessTrials);
    } else {
      Harmful = Seed && Seed->Kind == SeedKind::HarmfulUaf;
    }
    if (Harmful) {
      ++Eval.TrueHarmful;
      continue;
    }
    if (Seed)
      ++Eval.FalseBySeed[Seed->Kind];
    else
      ++Eval.Unattributed;
  }
  return Eval;
}
