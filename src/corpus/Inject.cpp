//===- corpus/Inject.cpp - Artificial UAF injection (Table 2) ------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "corpus/Inject.h"

#include "ir/IRBuilder.h"

using namespace nadroid;
using namespace nadroid::corpus;
using report::PairType;

const std::vector<InjectionSpec> &corpus::table2Injections() {
  // 28 injections over 8 apps; totals per pair type follow Table 2
  // (EC-EC 4, EC-PC 11, PC-PC 5, C-RT 1, C-NT 7), with the 2 detection
  // misses in Mms and the 3 CHB-pruned cases in Puzzles/Browser (§8.6).
  static const std::vector<InjectionSpec> Specs = [] {
    std::vector<InjectionSpec> S;
    S.push_back({"Tomdroid", /*EcEc=*/1, 0, 0, 0, 0, 0, 0});
    S.push_back({"SGTPuzzles", 0, /*EcPc=*/5, 0, 0, /*CNt=*/3, 0,
                 /*ChbErrorPath=*/1});
    S.push_back({"Aard", 0, /*EcPc=*/1, 0, 0, 0, 0, 0});
    S.push_back({"Music", 0, /*EcPc=*/2, /*PcPc=*/2, 0, /*CNt=*/2, 0, 0});
    S.push_back({"Mms", 0, /*EcPc=*/1, /*PcPc=*/2, /*CRt=*/1, 0,
                 /*OpaquePath=*/2, 0});
    S.push_back({"Browser", /*EcEc=*/1, 0, 0, 0, 0, 0,
                 /*ChbErrorPath=*/2});
    S.push_back({"MyTracks_2", 0, /*EcPc=*/1, 0, 0, 0, 0, 0});
    S.push_back({"K9Mail", 0, 0, 0, 0, /*CNt=*/1, 0, 0});
    return S;
  }();
  return Specs;
}

CorpusApp corpus::buildInjectedApp(const InjectionSpec &Spec) {
  CorpusApp App = buildAppNamed(Spec.App);
  ir::IRBuilder B(*App.Prog);
  PatternEmitter E(B, "X");

  for (unsigned I = 0; I < Spec.EcEc; ++I)
    E.harmfulOfType(PairType::EcEc);
  for (unsigned I = 0; I < Spec.EcPc; ++I)
    E.harmfulOfType(PairType::EcPc);
  for (unsigned I = 0; I < Spec.PcPc; ++I)
    E.harmfulOfType(PairType::PcPc);
  for (unsigned I = 0; I < Spec.CRt; ++I)
    E.harmfulOfType(PairType::CRt);
  for (unsigned I = 0; I < Spec.CNt; ++I)
    E.harmfulOfType(PairType::CNt);
  for (unsigned I = 0; I < Spec.OpaquePath; ++I)
    E.fnOpaquePath();
  for (unsigned I = 0; I < Spec.ChbErrorPath; ++I)
    E.fnChbErrorPath();

  App.Seeds.insert(App.Seeds.end(), E.seeds().begin(), E.seeds().end());
  return App;
}
