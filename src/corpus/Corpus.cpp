//===- corpus/Corpus.cpp - The 27-app synthetic corpus -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "ir/IRBuilder.h"

#include <cassert>

using namespace nadroid;
using namespace nadroid::corpus;

namespace {

/// Bulk idioms put at most this many uses in one pattern (one callback).
constexpr unsigned BulkCap = 40;

/// Emits `Count` warnings' worth of a bulk idiom via `Fn(usesThisRound)`.
template <typename Fn> void emitBulk(unsigned Count, Fn Emit) {
  while (Count > 0) {
    unsigned N = std::min(Count, BulkCap);
    Emit(N);
    Count -= N;
  }
}

} // namespace

CorpusApp corpus::buildApp(const Recipe &R) {
  CorpusApp App;
  App.Name = R.Name;
  App.Train = R.Train;
  App.Paper = R.Paper;
  App.Prog = std::make_unique<ir::Program>(R.Name);

  ir::IRBuilder B(*App.Prog);
  PatternEmitter E(B);

  // True harmful shapes first (stable naming for the reports).
  for (unsigned I = 0; I < R.HEcEc; ++I)
    E.harmfulEcEc();
  for (unsigned I = 0; I < R.HEcPc; ++I)
    E.harmfulEcPc();
  for (unsigned I = 0; I < R.HPcPc; ++I)
    E.harmfulPcPc();
  for (unsigned I = 0; I < R.HCRt; ++I)
    E.harmfulCRt();
  for (unsigned I = 0; I < R.HCNt; ++I)
    E.harmfulCNt();
  for (unsigned I = 0; I < R.HAsyncDestroy; ++I)
    E.harmfulAsyncVsDestroy();

  // Surviving false positives.
  for (unsigned I = 0; I < R.FpPath; ++I)
    E.fpPathInsensitive();
  for (unsigned I = 0; I < R.FpPts; ++I)
    E.fpPointsTo();
  for (unsigned I = 0; I < R.FpPtsK1; ++I)
    E.fpPointsToKSensitive();
  for (unsigned I = 0; I < R.FpNotReach; ++I)
    E.fpNotReachable();
  for (unsigned I = 0; I < R.FpMissHb; ++I)
    E.fpMissingHb();

  // Unsound-prunable idioms (one warning per pattern except UR).
  emitBulk(R.UnsUr, [&](unsigned N) { E.falseUr(N); });
  for (unsigned I = 0; I < R.UnsMa; ++I)
    E.falseMa();
  for (unsigned I = 0; I < R.UnsTt; ++I)
    E.falseTt();
  for (unsigned I = 0; I < R.UnsPhb; ++I)
    E.falsePhb();
  for (unsigned I = 0; I < R.UnsChb; ++I)
    E.falseChb();
  for (unsigned I = 0; I < R.UnsRhb; ++I)
    E.falseRhb();

  // Sound-prunable bulk.
  emitBulk(R.SoundIg, [&](unsigned N) { E.falseIg(N); });
  emitBulk(R.SoundMhbLife, [&](unsigned N) { E.falseMhbLifecycle(N); });
  emitBulk(R.SoundMhbSvc, [&](unsigned N) { E.falseMhbService(N); });
  for (unsigned I = 0; I < R.SoundMhbAsync; ++I)
    E.falseMhbAsync();
  emitBulk(R.SoundIa, [&](unsigned N) { E.falseIa(N); });

  // DEvA-only Fragment bugs.
  for (unsigned I = 0; I < R.FnFragment; ++I)
    E.fnFragment();

  // Benign mass (split across a few filler activities for realism).
  if (R.FillerUi || R.FillerPosts || R.FillerHelpers) {
    unsigned Ui = R.FillerUi, Posts = R.FillerPosts,
             Helpers = R.FillerHelpers;
    while (Ui || Posts || Helpers) {
      unsigned U = std::min(Ui, 12u), P = std::min(Posts, 8u),
               H = std::min(Helpers, 10u);
      E.safeFiller(U, P, H);
      Ui -= U;
      Posts -= P;
      Helpers -= H;
    }
  }
  if (R.FillerThreads)
    E.safeThreads(R.FillerThreads);

  App.Seeds = E.seeds();
  return App;
}

const std::vector<Recipe> &corpus::allRecipes() {
  static const std::vector<Recipe> Recipes = [] {
    std::vector<Recipe> Rs;
    auto Add = [&](Recipe R) { Rs.push_back(std::move(R)); };

    // ==================== Train group (7 apps) ====================
    {
      Recipe R;
      R.Name = "ToDoList";
      R.Train = true;
      R.SoundIg = 14;
      R.SoundMhbLife = 8;
      R.SoundIa = 4;
      R.UnsUr = 10;
      R.UnsMa = 4;
      R.UnsTt = 2;
      R.UnsPhb = 3;
      R.UnsChb = 2;
      R.UnsRhb = 2;
      R.FillerUi = 10;
      R.FillerPosts = 1;
      R.FillerHelpers = 8;
      R.Paper = {2637, 45, 1, 1, 54, 32, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "Zxing";
      R.Train = true;
      R.SoundIg = 140;
      R.SoundMhbLife = 60;
      R.SoundMhbSvc = 10;
      R.SoundMhbAsync = 2;
      R.SoundIa = 28;
      R.UnsUr = 2;
      R.UnsMa = 1;
      R.UnsTt = 1;
      R.FpPath = 2;
      R.FillerUi = 16;
      R.FillerPosts = 4;
      R.FillerHelpers = 12;
      R.FillerThreads = 6;
      R.Paper = {6453, 65, 15, 14, 263, 6, 2, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "Music";
      R.FpPtsK1 = 3;
      R.Train = true;
      R.SoundIg = 460;
      R.SoundMhbLife = 170;
      R.SoundMhbSvc = 40;
      R.SoundMhbAsync = 5;
      R.SoundIa = 100;
      R.UnsUr = 50;
      R.UnsMa = 25;
      R.UnsTt = 15;
      R.UnsPhb = 12;
      R.UnsChb = 5;
      R.UnsRhb = 5;
      R.FpPath = 5;
      R.FpPts = 1;
      R.FpNotReach = 1;
      R.FpMissHb = 3;
      R.FillerUi = 60;
      R.FillerPosts = 12;
      R.FillerHelpers = 30;
      R.Paper = {10518, 271, 41, 1, 19167, 2491, 207, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "MyTracks_1";
      R.Train = true;
      R.HEcEc = 1;
      R.HEcPc = 2;
      R.HPcPc = 26;
      R.FpPath = 6;
      R.FpPts = 2;
      R.FpMissHb = 2;
      R.SoundIg = 45;
      R.SoundMhbLife = 20;
      R.SoundIa = 11;
      R.UnsUr = 10;
      R.UnsMa = 5;
      R.UnsTt = 4;
      R.UnsPhb = 3;
      R.UnsChb = 2;
      R.UnsRhb = 1;
      R.FillerUi = 40;
      R.FillerPosts = 8;
      R.FillerHelpers = 20;
      R.FillerThreads = 12;
      R.Paper = {27080, 280, 58, 38, 825, 173, 80, 29};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "Browser";
      R.FpPtsK1 = 6;
      R.Train = true;
      R.SoundIg = 720;
      R.SoundMhbLife = 310;
      R.SoundMhbSvc = 60;
      R.SoundMhbAsync = 10;
      R.SoundIa = 170;
      R.UnsUr = 220;
      R.UnsMa = 90;
      R.UnsTt = 40;
      R.UnsPhb = 30;
      R.UnsChb = 10;
      R.UnsRhb = 10;
      R.FnFragment = 1; // Table 3's AccessibilityPreferencesFragment
      R.FillerUi = 50;
      R.FillerPosts = 12;
      R.FillerHelpers = 30;
      R.FillerThreads = 20;
      R.Paper = {30675, 216, 47, 53, 34185, 8077, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "ConnectBot";
      R.Train = true;
      R.HEcPc = 12;
      R.HPcPc = 1;
      R.SoundIg = 95;
      R.SoundMhbLife = 40;
      R.SoundMhbSvc = 15;
      R.SoundIa = 14;
      R.UnsUr = 8;
      R.UnsMa = 4;
      R.UnsTt = 2;
      R.UnsPhb = 3;
      R.UnsChb = 2;
      R.UnsRhb = 1;
      R.FillerUi = 25;
      R.FillerPosts = 6;
      R.FillerHelpers = 15;
      R.FillerThreads = 8;
      R.Paper = {32645, 105, 31, 19, 197, 33, 13, 13};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "FireFox";
      R.FpPtsK1 = 4;
      R.Train = true;
      R.HCNt = 1;
      R.FpPath = 50;
      R.FpPts = 5;
      R.FpNotReach = 1;
      R.FpMissHb = 20;
      R.SoundIg = 180;
      R.SoundMhbLife = 90;
      R.SoundMhbSvc = 20;
      R.SoundMhbAsync = 7;
      R.SoundIa = 30;
      R.UnsUr = 200;
      R.UnsMa = 100;
      R.UnsTt = 60;
      R.UnsPhb = 40;
      R.UnsChb = 13;
      R.UnsRhb = 10;
      R.FillerUi = 80;
      R.FillerPosts = 10;
      R.FillerHelpers = 40;
      R.FillerThreads = 40;
      R.Paper = {102658, 748, 28, 135, 16546, 10004, 1540, 1};
      Add(R);
    }

    // ==================== Test group (20 apps) ====================
    {
      Recipe R;
      R.Name = "SoundRecorder";
      R.SoundIg = 5;
      R.SoundMhbLife = 3;
      R.SoundIa = 1;
      R.FillerUi = 5;
      R.Paper = {1194, 14, 0, 1, 9, 0, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "Swiftnotes";
      R.FillerUi = 10;
      R.FillerPosts = 1;
      R.FillerHelpers = 6;
      R.Paper = {1571, 32, 1, 1, 0, 0, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "PhotoAffix";
      R.SoundIg = 50;
      R.SoundMhbLife = 14;
      R.SoundIa = 10;
      R.UnsUr = 2;
      R.UnsMa = 2;
      R.UnsTt = 1;
      R.FpPath = 2;
      R.FpMissHb = 2;
      R.FillerUi = 16;
      R.FillerPosts = 3;
      R.FillerHelpers = 8;
      R.Paper = {1924, 52, 9, 2, 84, 10, 4, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "MLManager";
      R.SoundIg = 200;
      R.SoundMhbLife = 40;
      R.SoundMhbSvc = 10;
      R.SoundIa = 26;
      R.UnsUr = 10;
      R.UnsMa = 12;
      R.UnsTt = 7;
      R.UnsPhb = 4;
      R.UnsChb = 2;
      R.UnsRhb = 2;
      R.FillerUi = 45;
      R.FillerPosts = 4;
      R.FillerHelpers = 16;
      R.FillerThreads = 5;
      R.Paper = {2073, 153, 11, 10, 304, 38, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "InstaMaterial";
      R.FpPtsK1 = 2;
      R.SoundIg = 450;
      R.SoundMhbLife = 80;
      R.SoundIa = 66;
      R.UnsUr = 12;
      R.UnsMa = 18;
      R.UnsTt = 10;
      R.UnsPhb = 5;
      R.UnsChb = 3;
      R.UnsRhb = 3;
      R.FillerUi = 14;
      R.FillerPosts = 10;
      R.FillerHelpers = 10;
      R.Paper = {2248, 42, 29, 4, 6496, 544, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "Tomdroid";
      R.FillerUi = 8;
      R.FillerPosts = 2;
      R.FillerHelpers = 6;
      R.Paper = {2372, 24, 4, 3, 0, 0, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "SGTPuzzles";
      R.SoundIg = 330;
      R.SoundMhbLife = 120;
      R.SoundIa = 90;
      R.SoundMhbSvc = 40;
      R.SoundMhbAsync = 10;
      R.FillerUi = 20;
      R.FillerPosts = 5;
      R.FillerHelpers = 10;
      R.Paper = {2944, 60, 14, 5, 591, 0, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "Aard";
      R.FpPtsK1 = 2;
      R.HEcPc = 8;
      R.FpPath = 9;
      R.FpPts = 5;
      R.FpMissHb = 5;
      R.FpNotReach = 2;
      R.SoundIg = 75;
      R.SoundMhbLife = 20;
      R.SoundIa = 15;
      R.UnsUr = 14;
      R.UnsMa = 18;
      R.UnsTt = 12;
      R.UnsPhb = 6;
      R.UnsChb = 4;
      R.UnsRhb = 4;
      R.FillerUi = 18;
      R.FillerPosts = 6;
      R.FillerHelpers = 10;
      R.FillerThreads = 10;
      R.Paper = {3684, 53, 20, 25, 216, 111, 48, 8};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "ClipStack";
      R.SoundMhbLife = 4;
      R.FillerUi = 30;
      R.FillerPosts = 6;
      R.FillerHelpers = 10;
      R.Paper = {3948, 106, 18, 2, 4, 0, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "KissLauncher";
      R.FpMissHb = 8;
      R.SoundIg = 170;
      R.SoundMhbLife = 25;
      R.SoundIa = 30;
      R.UnsUr = 3;
      R.UnsMa = 2;
      R.UnsTt = 1;
      R.FillerUi = 20;
      R.FillerPosts = 2;
      R.FillerHelpers = 10;
      R.FillerThreads = 6;
      R.Paper = {5210, 66, 7, 13, 264, 42, 36, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "DashClock";
      R.SoundIg = 39;
      R.SoundMhbLife = 15;
      R.SoundIa = 20;
      R.UnsUr = 1;
      R.FillerUi = 20;
      R.FillerPosts = 4;
      R.FillerHelpers = 10;
      R.Paper = {10147, 67, 13, 1, 74, 1, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "Dns66";
      R.SoundIg = 50;
      R.SoundMhbLife = 20;
      R.SoundIa = 16;
      R.FpPath = 5;
      R.FpPts = 2;
      R.FillerUi = 7;
      R.FillerPosts = 1;
      R.FillerHelpers = 8;
      R.FillerThreads = 3;
      R.Paper = {10423, 22, 4, 6, 99, 13, 13, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "CleanMaster";
      R.SoundMhbLife = 7;
      R.FillerUi = 36;
      R.FillerPosts = 12;
      R.FillerHelpers = 14;
      R.FillerThreads = 5;
      R.Paper = {11014, 117, 38, 12, 7, 0, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "OmniNotes";
      R.FpPtsK1 = 2;
      R.SoundMhbLife = 200;
      R.SoundIa = 120;
      R.SoundMhbSvc = 60;
      R.SoundMhbAsync = 16;
      R.SoundIg = 640;
      R.UnsUr = 1;
      R.FillerUi = 80;
      R.FillerPosts = 6;
      R.FillerHelpers = 30;
      R.FillerThreads = 10;
      R.Paper = {13720, 764, 19, 22, 10360, 32, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "Solitaire";
      R.SoundIg = 10;
      R.SoundMhbLife = 10;
      R.SoundIa = 7;
      R.UnsUr = 8;
      R.UnsMa = 10;
      R.UnsTt = 5;
      R.UnsPhb = 3;
      R.UnsChb = 2;
      R.UnsRhb = 1;
      R.FpPath = 1;
      R.FillerUi = 15;
      R.FillerPosts = 20;
      R.FillerHelpers = 8;
      R.Paper = {15478, 47, 70, 2, 48, 31, 1, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "Mms";
      R.FpPtsK1 = 4;
      R.SoundIg = 280;
      R.SoundMhbLife = 40;
      R.SoundMhbSvc = 15;
      R.SoundIa = 32;
      R.UnsUr = 45;
      R.UnsMa = 60;
      R.UnsTt = 35;
      R.UnsPhb = 15;
      R.UnsChb = 8;
      R.UnsRhb = 7;
      R.FpPath = 10;
      R.FpPts = 8;
      R.FpMissHb = 2;
      R.FpNotReach = 1;
      R.FillerUi = 90;
      R.FillerPosts = 10;
      R.FillerHelpers = 40;
      R.FillerThreads = 25;
      R.Paper = {27578, 413, 37, 52, 10439, 3990, 1207, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "MyTracks_2";
      R.HEcPc = 20;
      R.HAsyncDestroy = 7;
      R.FpPts = 2;
      R.FpPath = 2;
      R.SoundIg = 30;
      R.SoundMhbLife = 20;
      R.SoundMhbSvc = 10;
      R.SoundIa = 5;
      R.UnsUr = 6;
      R.UnsMa = 3;
      R.UnsTt = 2;
      R.UnsPhb = 1;
      R.UnsChb = 1;
      R.UnsRhb = 1;
      R.FillerUi = 80;
      R.FillerPosts = 12;
      R.FillerHelpers = 30;
      R.FillerThreads = 15;
      R.Paper = {37031, 1029, 59, 52, 1104, 145, 71, 27};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "MiMangaNu";
      R.SoundMhbLife = 6;
      R.SoundIa = 3;
      R.UnsUr = 1;
      R.FillerUi = 8;
      R.FillerPosts = 2;
      R.FillerHelpers = 10;
      R.FillerThreads = 4;
      R.Paper = {37827, 24, 9, 10, 10, 1, 0, 0};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "QKSMS";
      R.HPcPc = 10;
      R.FpPath = 4;
      R.FpPts = 1;
      R.SoundIg = 50;
      R.SoundMhbLife = 25;
      R.SoundMhbSvc = 8;
      R.SoundIa = 8;
      R.UnsUr = 9;
      R.UnsMa = 12;
      R.UnsTt = 8;
      R.UnsPhb = 4;
      R.UnsChb = 2;
      R.UnsRhb = 2;
      R.FillerUi = 60;
      R.FillerPosts = 10;
      R.FillerHelpers = 25;
      R.FillerThreads = 12;
      R.Paper = {56082, 225, 37, 35, 536, 171, 19, 10};
      Add(R);
    }
    {
      Recipe R;
      R.Name = "K9Mail";
      R.FpPtsK1 = 5;
      R.SoundIg = 900;
      R.SoundMhbLife = 160;
      R.SoundMhbSvc = 40;
      R.SoundMhbAsync = 9;
      R.SoundIa = 80;
      R.UnsUr = 20;
      R.UnsMa = 30;
      R.UnsTt = 20;
      R.UnsPhb = 8;
      R.UnsChb = 4;
      R.UnsRhb = 4;
      R.FpPath = 14;
      R.FpPts = 6;
      R.FpMissHb = 3;
      R.FillerUi = 120;
      R.FillerPosts = 8;
      R.FillerHelpers = 50;
      R.FillerThreads = 8;
      R.Paper = {78437, 499, 27, 20, 45336, 4143, 918, 0};
      Add(R);
    }
    return Rs;
  }();
  return Recipes;
}

std::vector<CorpusApp> corpus::buildCorpus() {
  std::vector<CorpusApp> Apps;
  for (const Recipe &R : allRecipes())
    Apps.push_back(buildApp(R));
  return Apps;
}

std::vector<CorpusApp> corpus::buildTrainCorpus() {
  std::vector<CorpusApp> Apps;
  for (const Recipe &R : allRecipes())
    if (R.Train)
      Apps.push_back(buildApp(R));
  return Apps;
}

std::vector<CorpusApp> corpus::buildTestCorpus() {
  std::vector<CorpusApp> Apps;
  for (const Recipe &R : allRecipes())
    if (!R.Train)
      Apps.push_back(buildApp(R));
  return Apps;
}

CorpusApp corpus::buildAppNamed(const std::string &Name) {
  for (const Recipe &R : allRecipes())
    if (R.Name == Name)
      return buildApp(R);
  assert(false && "unknown corpus app name");
  return CorpusApp();
}
