//===- corpus/Evaluate.h - Per-app evaluation harness -----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full pipeline over one corpus app and summarizes it the way
/// Table 1 does: EC/PC/T counts, potential warnings, warnings remaining
/// after sound/unsound filters, pair-type breakdown, interpreter-confirmed
/// true harmful UAFs, and §8.5 false-positive attribution (via the seeded
/// ground truth).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_CORPUS_EVALUATE_H
#define NADROID_CORPUS_EVALUATE_H

#include "corpus/Corpus.h"
#include "report/Nadroid.h"

#include <map>

namespace nadroid::corpus {

/// The Table 1 row for one app.
struct AppEvaluation {
  std::string Name;
  bool Train = false;
  PaperRow Paper;

  unsigned Loc = 0; ///< AIR statement count (the paper's LOC proxy)
  unsigned Ec = 0, Pc = 0, T = 0;
  unsigned Potential = 0, AfterSound = 0, AfterUnsound = 0;

  /// Remaining warnings by pair type.
  std::map<report::PairType, unsigned> RemainingByType;
  /// Interpreter-confirmed harmful remaining warnings.
  unsigned TrueHarmful = 0;
  /// Remaining non-harmful warnings by seeded FP category.
  std::map<SeedKind, unsigned> FalseBySeed;
  /// Remaining warnings whose field matches no seed (should be zero).
  unsigned Unattributed = 0;

  /// The full pipeline result, kept for deeper inspection.
  report::NadroidResult Result;
};

struct EvaluateOptions {
  /// Confirm remaining warnings with directed schedule exploration; when
  /// false, TrueHarmful falls back to the seeded expectation.
  bool RunInterpreter = true;
  /// Directed trials per remaining warning.
  unsigned WitnessTrials = 40;
};

/// Evaluates one app.
AppEvaluation evaluateApp(const CorpusApp &App, EvaluateOptions Opts);
AppEvaluation evaluateApp(const CorpusApp &App);

/// Looks up the seed owning \p FieldQualifiedName; nullptr when unseeded.
const SeededBug *findSeed(const CorpusApp &App,
                          const std::string &FieldQualifiedName);

} // namespace nadroid::corpus

#endif // NADROID_CORPUS_EVALUATE_H
