//===- corpus/RandomApp.cpp - Seeded random app generation ---------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "corpus/RandomApp.h"

#include "ir/IRBuilder.h"
#include "support/Rng.h"

#include <set>

using namespace nadroid;
using namespace nadroid::corpus;
using namespace nadroid::ir;

namespace {

/// Per-activity generation state.
struct ActState {
  Clazz *Act = nullptr;
  Clazz *Payload = nullptr;
  std::vector<Field *> Fields;
  Field *Monitor = nullptr;
};

class Generator {
public:
  Generator(const RandomAppOptions &O, Program &P)
      : O(O), P(P), B(P), Rand(O.Seed) {}

  void run() {
    for (unsigned A = 0; A < O.Activities; ++A)
      makeActivity(A);
  }

private:
  const RandomAppOptions &O;
  Program &P;
  IRBuilder B;
  Rng Rand;
  unsigned NextAux = 0;

  static const char *callbackName(unsigned I) {
    // UI, system, and unordered-lifecycle names; onCreate/onDestroy are
    // handled separately so the generator controls their semantics.
    static const char *Names[] = {
        "onClick",          "onLongClick",       "onCreateOptionsMenu",
        "onCreateContextMenu", "onItemClick",    "onLocationChanged",
        "onSensorChanged",  "onPause",           "onResume",
        "onStart",          "onStop",            "onActivityResult",
    };
    return Names[I % (sizeof(Names) / sizeof(Names[0]))];
  }

  std::string aux(const char *Prefix) {
    return std::string(Prefix) + std::to_string(NextAux++);
  }

  void makeActivity(unsigned Index) {
    ActState S;
    std::string Tag = std::to_string(Index);
    S.Payload = B.makeClass("Data" + Tag, ClassKind::Plain);
    B.makeMethod(S.Payload, "use");
    B.emitReturn();

    S.Act = B.makeClass("Screen" + Tag, ClassKind::Activity);
    P.addManifestComponent(S.Act);
    for (unsigned F = 0; F < O.FieldsPerActivity; ++F)
      S.Fields.push_back(
          B.addField(S.Act, "f" + std::to_string(F), S.Payload));
    S.Monitor = B.addField(S.Act, "mon", S.Payload);

    // onCreate allocates every field plus the monitor: the generator
    // rules out uninitialized reads so crashes always mean a free.
    B.makeMethod(S.Act, "onCreate");
    for (Field *F : S.Fields) {
      Local *X = B.emitNew(aux("x"), S.Payload);
      B.emitStore(B.thisLocal(), F, X);
    }
    Local *M = B.emitNew(aux("m"), S.Payload);
    B.emitStore(B.thisLocal(), S.Monitor, M);

    for (unsigned C = 0; C < O.CallbacksPerActivity; ++C) {
      const char *Name = callbackName(C);
      if (S.Act->findOwnMethod(Name))
        continue;
      B.makeMethod(S.Act, Name);
      emitBody(S);
    }
  }

  /// Per-body constraint state: a callback may use a field or free it,
  /// never both — a callback that does both crashes its own *second*
  /// activation, a sequential bug outside the race-detector contract
  /// (the paper concedes the same blind spot for repeated callbacks in
  /// §6.2.1's PHB discussion).
  struct BodyState {
    std::set<const Field *> Used;
    std::set<const Field *> Freed;
  };

  /// Emits a random operation sequence into the current method.
  void emitBody(ActState &S) {
    BodyState BS;
    unsigned Ops = 1 + static_cast<unsigned>(
                           Rand.below(O.MaxOpsPerCallback));
    for (unsigned I = 0; I < Ops; ++I)
      emitOp(S, BS);
  }

  Field *pickField(ActState &S) {
    return S.Fields[Rand.below(S.Fields.size())];
  }

  void emitUse(ActState &S, BodyState &BS, bool Guarded) {
    Field *F = pickField(S);
    if (BS.Freed.count(F))
      return;
    BS.Used.insert(F);
    Local *U = B.local(aux("u"));
    B.emitLoad(U, B.thisLocal(), F);
    if (Guarded) {
      B.beginIfNotNull(U);
      B.emitCall(nullptr, U, "use");
      B.endIf();
    } else {
      B.emitCall(nullptr, U, "use");
    }
  }

  void emitOp(ActState &S, BodyState &BS) {
    switch (Rand.below(10)) {
    case 0: // plain use
      emitUse(S, BS, false);
      return;
    case 1: // guarded use
      emitUse(S, BS, true);
      return;
    case 2: { // free
      Field *F = pickField(S);
      if (BS.Used.count(F))
        return; // never both use and free one field (see BodyState)
      B.emitStore(B.thisLocal(), F, nullptr);
      BS.Freed.insert(F);
      return;
    }
    case 3: { // re-allocation
      Field *F = pickField(S);
      Local *X = B.emitNew(aux("x"), S.Payload);
      B.emitStore(B.thisLocal(), F, X);
      return;
    }
    case 4: { // locked op
      Local *L = B.local(aux("l"));
      B.emitLoad(L, B.thisLocal(), S.Monitor);
      B.beginSync(L);
      emitUse(S, BS, Rand.chance(1, 2));
      B.endSync();
      return;
    }
    case 5: { // opaque branch around a free
      Field *F = pickField(S);
      if (BS.Used.count(F))
        return;
      B.beginIfUnknown();
      B.emitStore(B.thisLocal(), F, nullptr);
      B.endIf();
      BS.Freed.insert(F);
      return;
    }
    case 6: { // helper call (helper only does safe local work)
      std::string Name = aux("helper");
      Method *Caller = B.currentMethod();
      B.emitCall(nullptr, B.thisLocal(), Name);
      B.makeMethod(S.Act, Name);
      Local *X = B.emitNew(aux("x"), S.Payload);
      B.emitCall(nullptr, X, "use");
      B.emitReturn(X);
      B.setInsertMethod(Caller);
      return;
    }
    case 7: { // post a runnable that uses or frees a field
      Field *F = pickField(S);
      bool RunFrees = Rand.chance(1, 2);
      Clazz *Run = B.makeClass(aux("Job"), ClassKind::Runnable);
      Field *ActF = B.addField(Run, "act", S.Act);
      Method *Caller = B.currentMethod();
      B.makeMethod(Run, "run");
      Local *A = B.local("a");
      B.emitLoad(A, B.thisLocal(), ActF);
      if (RunFrees) {
        B.emitStore(A, F, nullptr);
      } else {
        Local *U = B.local("u");
        B.emitLoad(U, A, F);
        B.emitCall(nullptr, U, "use");
      }
      B.setInsertMethod(Caller);
      Local *R = B.emitNew(aux("r"), Run);
      B.emitStore(R, ActF, B.thisLocal());
      B.emitCall(nullptr, B.thisLocal(), "runOnUiThread", {R});
      return;
    }
    case 8: { // start a thread that uses or frees a field (maybe locked)
      Field *F = pickField(S);
      bool ThreadFrees = Rand.chance(1, 2);
      bool Locked = Rand.chance(1, 3);
      Clazz *W = B.makeClass(aux("Worker"), ClassKind::ThreadClass);
      Field *ActF = B.addField(W, "act", S.Act);
      Method *Caller = B.currentMethod();
      B.makeMethod(W, "run");
      Local *A = B.local("a");
      B.emitLoad(A, B.thisLocal(), ActF);
      Local *L = nullptr;
      if (Locked) {
        L = B.local("l");
        B.emitLoad(L, A, S.Monitor);
        B.beginSync(L);
      }
      if (ThreadFrees) {
        B.emitStore(A, F, nullptr);
      } else {
        Local *U = B.local("u");
        B.emitLoad(U, A, F);
        B.emitCall(nullptr, U, "use");
      }
      if (Locked)
        B.endSync();
      B.setInsertMethod(Caller);
      Local *T = B.emitNew(aux("t"), W);
      B.emitStore(T, ActF, B.thisLocal());
      B.emitCall(nullptr, T, "start");
      return;
    }
    case 9: // rare cancellation
      if (Rand.chance(1, 4)) {
        B.emitFinish();
        return;
      }
      emitUse(S, BS, false);
      return;
    }
  }
};

} // namespace

std::unique_ptr<Program>
corpus::generateRandomApp(const RandomAppOptions &O) {
  auto P = std::make_unique<Program>("fuzz" + std::to_string(O.Seed));
  Generator(O, *P).run();
  return P;
}
