//===- corpus/Inject.h - Artificial UAF injection (Table 2) -----*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §8.6 false-negative experiment: the paper injects 28 artificial
/// UAF violations (at DroidRacer-reported race locations) into 8 apps and
/// checks whether nAdroid finds them. Two escape detection (objects
/// round-tripping through the framework break the call graph) and three
/// are wrongly pruned by the unsound CHB filter (finish() on an error
/// path). The injector reproduces that construction: it extends a corpus
/// app with harmful patterns of prescribed pair types plus the two
/// escape constructions.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_CORPUS_INJECT_H
#define NADROID_CORPUS_INJECT_H

#include "corpus/Corpus.h"

namespace nadroid::corpus {

/// Injections for one app.
struct InjectionSpec {
  std::string App;
  unsigned EcEc = 0, EcPc = 0, PcPc = 0, CRt = 0, CNt = 0;
  /// Framework-round-trip UAFs (missed by detection, §8.6's IBinder case).
  unsigned OpaquePath = 0;
  /// finish()-on-error-path UAFs (pruned by the unsound CHB filter).
  unsigned ChbErrorPath = 0;

  unsigned total() const {
    return EcEc + EcPc + PcPc + CRt + CNt + OpaquePath + ChbErrorPath;
  }
};

/// The 8-app, 28-injection layout of Table 2 (2 opaque-path in Mms, 3
/// CHB-error-path split Puzzles/Browser, per §8.6).
const std::vector<InjectionSpec> &table2Injections();

/// Builds the named app and injects per \p Spec; injected seeds carry the
/// "X"-prefixed class names and are appended to CorpusApp::Seeds.
CorpusApp buildInjectedApp(const InjectionSpec &Spec);

} // namespace nadroid::corpus

#endif // NADROID_CORPUS_INJECT_H
