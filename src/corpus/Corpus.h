//===- corpus/Corpus.h - The 27-app synthetic corpus ------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the paper's 27 evaluation apps (Table 1): each
/// app is generated from a recipe that fixes how many warnings of each
/// filterable idiom, each surviving-FP category, and each true harmful
/// shape it contains. True-harmful counts and their pair-type mixes match
/// the paper exactly (88 total: ConnectBot 13, MyTracks_1 29, FireFox 1,
/// Aard 8, QKSMS 10, MyTracks_2 27); warning *mass* is scaled down (real
/// apps are 10-100x larger) while preserving each app's pruning profile —
/// which apps end at zero, which stay noisy, where the unsound filters do
/// or do not help. EXPERIMENTS.md records the scaling.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_CORPUS_CORPUS_H
#define NADROID_CORPUS_CORPUS_H

#include "corpus/Patterns.h"
#include "ir/Ir.h"

#include <memory>
#include <string>
#include <vector>

namespace nadroid::corpus {

/// Paper Table 1 reference values (for side-by-side reporting).
struct PaperRow {
  unsigned Loc = 0, Ec = 0, Pc = 0, T = 0;
  unsigned Potential = 0, AfterSound = 0, AfterUnsound = 0, TrueHarmful = 0;
};

/// Generation parameters for one app (counts are *warning* targets for
/// the bulk idioms and *pattern* counts elsewhere).
struct Recipe {
  std::string Name;
  bool Train = false;

  // Sound-prunable warning mass.
  unsigned SoundIg = 0;
  unsigned SoundMhbLife = 0;
  unsigned SoundMhbSvc = 0;
  unsigned SoundMhbAsync = 0;
  unsigned SoundIa = 0;
  // Unsound-prunable warning mass.
  unsigned UnsUr = 0, UnsMa = 0, UnsTt = 0, UnsPhb = 0, UnsChb = 0,
           UnsRhb = 0;
  // Surviving false positives by §8.5 category.
  unsigned FpPath = 0, FpPts = 0, FpNotReach = 0, FpMissHb = 0;
  // k=1-only points-to FPs (invisible at the default k=2; the k-ablation
  // bench surfaces them).
  unsigned FpPtsK1 = 0;
  // True harmful UAFs by pair type.
  unsigned HEcEc = 0, HEcPc = 0, HPcPc = 0, HCRt = 0, HCNt = 0,
           HAsyncDestroy = 0;
  // Fragment-only bugs (DEvA sees them, nAdroid cannot — §8.1).
  unsigned FnFragment = 0;
  // Benign mass for the LOC/EC/PC/T columns.
  unsigned FillerUi = 0, FillerPosts = 0, FillerHelpers = 0,
           FillerThreads = 0;

  PaperRow Paper;
};

/// A generated app plus its ground truth.
struct CorpusApp {
  std::string Name;
  bool Train = false;
  std::unique_ptr<ir::Program> Prog;
  std::vector<SeededBug> Seeds;
  PaperRow Paper;
};

/// The 27 recipes in Table 1 order (train first).
const std::vector<Recipe> &allRecipes();

/// Builds one app deterministically from its recipe.
CorpusApp buildApp(const Recipe &R);

/// Builds every app / the 7 train apps / the 20 test apps.
std::vector<CorpusApp> buildCorpus();
std::vector<CorpusApp> buildTrainCorpus();
std::vector<CorpusApp> buildTestCorpus();

/// Builds one app by name; aborts on unknown names.
CorpusApp buildAppNamed(const std::string &Name);

} // namespace nadroid::corpus

#endif // NADROID_CORPUS_CORPUS_H
