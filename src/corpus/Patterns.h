//===- corpus/Patterns.h - Seeded bug/idiom patterns ------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The building blocks of the synthetic corpus: each emitter writes one
/// self-contained bug or idiom cluster (its own field, its own host
/// classes) into a program and records ground truth about it. The pattern
/// vocabulary covers:
///
///  * every harmful UAF shape the paper reports (Figure 1's three bugs,
///    by pair type EC-EC / EC-PC / PC-PC / C-RT / C-NT),
///  * every filter's target idiom (Figure 4 (a)–(g) plus MHB-Lifecycle,
///    MHB-AsyncTask, TT),
///  * every §8.5 false-positive category that survives filtering
///    (path-insensitivity, points-to merging, unreachable components,
///    missing UI happens-before), and
///  * the §8.6 false-negative constructions (framework round-trip,
///    cancel-on-error-path).
///
/// Emitters place each pattern on a dedicated Activity so patterns cannot
/// interfere (finish(), pause/resume, and onDestroy have activity-global
/// effects).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_CORPUS_PATTERNS_H
#define NADROID_CORPUS_PATTERNS_H

#include "ir/IRBuilder.h"
#include "report/Classify.h"

#include <string>
#include <vector>

namespace nadroid::corpus {

/// What a seeded pattern is expected to do downstream.
enum class SeedKind : uint8_t {
  HarmfulUaf,     ///< remaining + interpreter-witnessable
  FalseMhb,       ///< pruned by the sound MHB filter
  FalseIg,        ///< pruned by the sound IG filter
  FalseIgInterproc, ///< pruned by IG only inter-procedurally (§8.7)
  FalseIa,        ///< pruned by the sound IA filter
  FalseRhb,       ///< pruned by the unsound RHB filter
  FalseChb,       ///< pruned by the unsound CHB filter
  FalsePhb,       ///< pruned by the unsound PHB filter
  RhbProved,      ///< RHB suppression the refuter proves sound
  RhbRacy,        ///< RHB suppression the refuter demotes (real race)
  ChbProved,      ///< CHB suppression the refuter proves sound
  ChbRacy,        ///< CHB suppression the refuter demotes (real race)
  ChbResumeRacy,  ///< CHB suppression demoted; free in onResume, no onPause
  PhbProved,      ///< PHB suppression the refuter proves sound
  PhbRacy,        ///< PHB suppression the refuter demotes (real race)
  RhbRepeatProved, ///< tier-1 assumed; tier-2 inter-procedural revive proves
  RhbRepeatRacy,   ///< tier-1 assumed; helper re-allocates on a branch only
  ChbDeepProved,   ///< tier-1 assumed; tier-2 inter-procedural kill proves
  ChbRepeatProved, ///< same kill shape, unboundedly-repeating system use
  ChbRepeatRacy,   ///< helper finish on an error branch: stays assumed
  PhbChainProved,  ///< post chain beyond tier-1 capacity; tier-2 proves
  PhbChainRacy,    ///< short freeing chain re-posted per click: real race
  FalseMa,        ///< pruned by the unsound MA filter
  FalseUr,        ///< pruned by the unsound UR filter
  FalseTt,        ///< pruned by the unsound TT filter
  FpPathInsens,   ///< remaining; infeasible path correlation (§8.5)
  FpPointsTo,     ///< remaining; k-obj heap merging (§8.5)
  FpNotReach,     ///< remaining; component unreachable (§8.5)
  FpMissingHb,    ///< remaining; UI enable/disable HB unknown (§8.5)
  FnOpaquePath,   ///< harmful but invisible to the static call graph
  FnChbErrorPath, ///< harmful but pruned by CHB's may-analysis
  FnFragment,     ///< visible to DEvA only — nAdroid skips Fragments (§8.1)
  //===--------------------------------------------------------------------===//
  // Typestate protocol seeds (--lint): each builtin `protocol` machine
  // gets a violating instance (exactly one typestate finding, and a UAF
  // the interpreter witnesses as the leak's consequence) and a clean
  // twin (zero findings, no witness). Like the refuter variants, NOT
  // part of any corpus recipe.
  //===--------------------------------------------------------------------===//
  ProtoReceiverLeak,  ///< registered receiver never unregistered (leak)
  ProtoReceiverClean, ///< twin: onDestroy unregisters first
  ProtoBindLeak,      ///< bound connection never unbound (leak)
  ProtoBindClean,     ///< twin: onDestroy unbinds first
  ProtoPostLeak,      ///< posted runnable pending at destroy (leak)
  ProtoPostClean,     ///< twin: onDestroy removeCallbacksAndMessages
  ProtoUnregNoReg,    ///< unregisterReceiver with no prior register
  ProtoUnregClean,    ///< twin: onCreate registers first
  ProtoUnbindNoBind,  ///< unbindService with no prior bind
  ProtoUnbindClean,   ///< twin: onCreate binds first
};

const char *seedKindName(SeedKind Kind);

/// Ground-truth record for one seeded pattern.
struct SeededBug {
  SeedKind Kind = SeedKind::HarmfulUaf;
  /// Qualified racy field, e.g. "ZxA3.f3".
  std::string FieldName;
  /// Qualified methods holding the use / free.
  std::string UseMethod;
  std::string FreeMethod;
  /// Pair type a harmful seed manifests as.
  report::PairType ExpectedType = report::PairType::EcEc;
};

/// Emits patterns into one program; Index-disambiguated names keep
/// clusters independent.
class PatternEmitter {
public:
  /// \p Prefix disambiguates generated class names; the Table 2 injector
  /// uses it to add patterns to an already-built app.
  explicit PatternEmitter(ir::IRBuilder &B, std::string Prefix = "")
      : B(B), Prefix(std::move(Prefix)) {}

  const std::vector<SeededBug> &seeds() const { return Seeds; }

  //===--------------------------------------------------------------------===//
  // Harmful patterns (Figure 1 shapes, by pair type)
  //===--------------------------------------------------------------------===//

  /// Use in one UI callback, free in another (no guard, no order).
  void harmfulEcEc();
  /// Figure 1(a): use in a UI callback, free in onServiceDisconnected.
  void harmfulEcPc();
  /// Figure 1(b): a posted Runnable uses what onServiceDisconnected frees.
  void harmfulPcPc();
  /// Figure 1(c): a background thread frees under a useless if-guard.
  void harmfulCNt();
  /// A callback races with a thread it started itself.
  void harmfulCRt();
  /// MyTracks-style: an AsyncTask progress callback uses what onDestroy
  /// frees (survives MHB-Lifecycle, which covers entry callbacks only).
  void harmfulAsyncVsDestroy();

  //===--------------------------------------------------------------------===//
  // Filter-target idioms (Figure 4 and §6)
  //===--------------------------------------------------------------------===//

  /// Free in onDestroy vs \p Uses UI-callback uses (MHB-Lifecycle).
  /// These are also exactly the warnings DEvA reports as harmful
  /// (Table 3's onDestroy rows).
  void falseMhbLifecycle(unsigned Uses = 1);
  /// Figure 4(a): use inside onServiceConnected (MHB-Service).
  void falseMhbService(unsigned Uses = 1);
  /// doInBackground uses, onPostExecute frees (MHB-AsyncTask).
  void falseMhbAsync();
  /// Figure 4(b): guarded use between same-looper callbacks (IG).
  void falseIg(unsigned Uses = 1);
  /// The §8.7 shape the paper's prototype misses: the null check sits in
  /// the caller, the dereference in a this-called helper. Pruned by IG
  /// under the inter-procedural nullness analysis; Remaining under
  /// `--syntactic-filters`. Deliberately NOT part of any corpus recipe so
  /// the pinned Table 1 counts are identical in both modes.
  void falseIgInterproc();
  /// Figure 4(c): allocation dominates the use (IA).
  void falseIa(unsigned Uses = 1);
  /// Figure 4(d) benign form: onResume re-allocates (RHB).
  void falseRhb();
  /// Figure 4(e): the freeing callback calls finish() (CHB).
  void falseChb();
  /// Figure 4(f): poster uses, postee frees (PHB).
  void falsePhb();
  //===--------------------------------------------------------------------===//
  // Refutation-engine variants (--refute): each unsound may-HB filter
  // split into a provably-ordered shape and a genuinely racy one. Like
  // falseIgInterproc, these are NOT part of any corpus recipe, so the
  // pinned Table 1 counts are identical with and without --refute; the
  // refuter benches and tests build them explicitly.
  //===--------------------------------------------------------------------===//

  /// RHB, sound instance: onResume re-allocates unconditionally, so no
  /// abstract message history runs the use after the free.
  void rhbProved();
  /// RHB, unsound instance: onResume re-allocates only on one branch;
  /// the history pause -> resume(no alloc) -> click crashes.
  void rhbRacy();
  /// CHB, sound instance: finish() dominates the free, killing every
  /// later entry callback of the activity.
  void chbProved();
  /// CHB, unsound instance: finish() sits on an error branch and does
  /// not dominate the free (the §8.6 fnChbErrorPath shape, labeled for
  /// the refuter benches).
  void chbRacy();
  /// CHB, unsound instance exercising the lifecycle model's launch path:
  /// the free sits in onResume and the activity never overrides onPause,
  /// so the free is reachable only through the framework onResume that
  /// follows onCreate. A phase machine that admits onResume solely after
  /// onPause would never explore the free and wrongly prove this pair.
  void chbResumeRacy();
  /// PHB, sound instance: onDestroy posts the freeing runnable; the
  /// using callback (onDestroy itself) can never activate again.
  void phbProved();
  /// PHB, unsound instance: onClick posts the freeing runnable; a second
  /// click lands after the postee's free.
  void phbRacy();

  //===--------------------------------------------------------------------===//
  // History-refuter variants (--refute-v2): each tier-1 Assumed source
  // split into a shape the tier-2 refinement discharges and a genuinely
  // racy sibling. Like the tier-1 variants above, NOT part of any corpus
  // recipe; the refuter benches and tests build them explicitly.
  //===--------------------------------------------------------------------===//

  /// RHB, tier-2 provable: onResume re-allocates on a branch only (the
  /// intra-procedural must-analysis fails, tier 1 assumes) but then
  /// calls a helper that re-allocates unconditionally — the
  /// inter-procedural revive refinement proves the pair.
  void rhbRepeatProved();
  /// RHB, genuinely racy: same shape, but the helper also re-allocates
  /// on a branch only. No refinement applies; the witness history
  /// pause -> resume(no alloc anywhere) -> click is stable.
  void rhbRepeatRacy();
  /// CHB, tier-2 provable: the freeing onClick calls a teardown helper
  /// whose finish() dominates its exit; tier 1 sees no must-cancel in
  /// the free's own method, the inter-procedural kill refinement does.
  void chbDeepProved();
  /// CHB, tier-2 provable, repeating-history form: same helper-finish
  /// kill, but the use is a system-event callback (onLocationChanged)
  /// that activates unboundedly often and even while paused — only the
  /// kill edge orders it.
  void chbRepeatProved();
  /// CHB, genuinely racy: the teardown helper calls finish() on an error
  /// branch only, so it never becomes a must-cancel at any depth.
  void chbRepeatRacy();
  /// PHB, tier-2 provable: onDestroy uses, then posts an 11-deep relay
  /// chain whose last link frees. The 13 interacting callbacks exceed
  /// tier 1's capacity (demoted); tier 2's larger budget proves it —
  /// onDestroy can never re-activate after Destroyed.
  void phbChainProved();
  /// PHB, genuinely racy: onClick uses and posts a 2-deep chain whose
  /// last link frees; a second click lands after the free.
  void phbChainRacy();

  /// Getter-backed allocation before use (MA).
  void falseMa();
  /// Figure 4(g): the loaded value only flows to a call argument (UR).
  void falseUr(unsigned Uses = 1);
  /// Two native threads race without any looper involvement (TT).
  void falseTt();

  //===--------------------------------------------------------------------===//
  // Surviving false positives (§8.5 categories)
  //===--------------------------------------------------------------------===//

  /// Correlated-flag guard the path-insensitive analysis cannot see.
  void fpPathInsensitive();
  /// Two runtime objects share one k-limited abstract object.
  void fpPointsTo();
  /// A points-to FP that k=2 resolves but k=1 does not: payloads made by
  /// two distinct factory *objects* merge only when heap contexts are
  /// dropped. Invisible at the paper's default k=2 (no warning at all);
  /// the k-ablation bench surfaces it.
  void fpPointsToKSensitive();
  /// A harmful-looking pattern on a component no intent launches.
  void fpNotReachable();
  /// The freeing callback disables the using button first.
  void fpMissingHb();

  //===--------------------------------------------------------------------===//
  // False-negative constructions (§8.6, Table 2)
  //===--------------------------------------------------------------------===//

  /// Harmful UAF on an object round-tripped through the framework
  /// (IBinder pattern): the detector's call graph loses it.
  void fnOpaquePath();
  /// Harmful UAF whose freeing callback calls finish() only on an error
  /// path: CHB's may-analysis wrongly prunes it.
  void fnChbErrorPath();
  /// A UAF inside a Fragment: invisible to nAdroid's modeling (§8.1) but
  /// reported by the class-based DEvA baseline — Table 3's Browser row.
  void fnFragment();

  /// A harmful UAF of the requested pair type (Table 2 injection helper).
  void harmfulOfType(report::PairType Type);

  //===--------------------------------------------------------------------===//
  // Typestate protocol seeds (--lint). One emitter per (builtin
  // protocol, verdict); see the SeedKind block for the contract. Each
  // violating shape doubles as an interpreter-witnessable UAF — the
  // crash a schedule past the leaked registration produces is the
  // runtime consequence the protocol rule statically predicts.
  //===--------------------------------------------------------------------===//

  /// receiver-leak violating: onCreate registers an act-wired receiver,
  /// onDestroy frees the payload but never unregisters — onReceive can
  /// land after destroy and crash.
  void protoReceiverLeak();
  /// receiver-leak clean twin: onDestroy unregisters before freeing.
  void protoReceiverClean();
  /// service-bind-leak violating: onCreate binds an act-wired
  /// connection, onDestroy never unbinds — onServiceDisconnected can
  /// land after destroy.
  void protoBindLeak();
  /// service-bind-leak clean twin: onDestroy unbinds before freeing.
  void protoBindClean();
  /// handler-post-leak violating: onClick posts an act-wired runnable,
  /// onDestroy frees without draining the handler.
  void protoPostLeak();
  /// handler-post-leak clean twin: onDestroy removeCallbacksAndMessages.
  void protoPostClean();
  /// unbalanced-unregister violating: onLocationChanged uses the payload
  /// (onPause frees it) then calls unregisterReceiver with no
  /// registerReceiver anywhere.
  void protoUnregNoReg();
  /// unbalanced-unregister clean twin: onCreate registers; the use is
  /// null-guarded.
  void protoUnregClean();
  /// unbalanced-unbind violating: unbindService with no prior bind.
  void protoUnbindNoBind();
  /// unbalanced-unbind clean twin: onCreate binds; the use is guarded.
  void protoUnbindClean();

  //===--------------------------------------------------------------------===//
  // Benign mass
  //===--------------------------------------------------------------------===//

  /// Callback/helper/post mass with no warnings at all: \p UiCallbacks UI
  /// entry points, \p Posts posted runnables, \p Helpers helper methods.
  void safeFiller(unsigned UiCallbacks, unsigned Posts, unsigned Helpers);

  /// \p Count benign native threads (Table 1's T column mass).
  void safeThreads(unsigned Count);

private:
  ir::IRBuilder &B;
  std::string Prefix;
  std::vector<SeededBug> Seeds;
  unsigned Index = 0;

  /// Fresh per-pattern suffix (consumes an index).
  std::string tag();
  /// Suffix for a pattern's auxiliary classes (peeks the next index).
  std::string innerTag() const { return Prefix + std::to_string(Index); }
  /// Creates the pattern's dedicated manifest Activity with a payload
  /// class and field "f<tag>"; onCreate pre-allocates the field.
  struct Host {
    ir::Clazz *Activity = nullptr;
    ir::Clazz *Payload = nullptr;
    ir::Field *F = nullptr;
  };
  Host makeHost(const std::string &Tag, bool Manifest = true);
  void record(SeedKind Kind, const ir::Field *F, const ir::Method *Use,
              const ir::Method *Free, report::PairType Type);
};

} // namespace nadroid::corpus

#endif // NADROID_CORPUS_PATTERNS_H
