//===- corpus/RandomApp.h - Seeded random app generation --------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded random-program generator for adversarial property testing:
/// random activities with random fields, callbacks, helpers, guards,
/// monitors, frees, posts, threads, and cancellations. Unlike the curated
/// corpus, nothing here is labeled — the fuzz properties
/// (tests/FuzzTest.cpp) only assert relationships that must hold for
/// *any* program: verifier acceptance, print/parse round-trips, pipeline
/// determinism, and dynamic soundness of detection and of the sound
/// filters.
///
/// One deliberate generation constraint: a callback never uses a field it
/// freed earlier in its own body. Sequential single-callback null
/// dereferences are plain bugs, not ordering violations, and sit outside
/// a race detector's contract — exactly the boundary the properties
/// check.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_CORPUS_RANDOMAPP_H
#define NADROID_CORPUS_RANDOMAPP_H

#include "ir/Ir.h"

#include <memory>

namespace nadroid::corpus {

struct RandomAppOptions {
  uint64_t Seed = 1;
  unsigned Activities = 2;
  unsigned FieldsPerActivity = 2;
  unsigned CallbacksPerActivity = 4;
  unsigned MaxOpsPerCallback = 5;
};

/// Generates a verifier-clean random app. Deterministic in the options.
std::unique_ptr<ir::Program> generateRandomApp(const RandomAppOptions &O);

} // namespace nadroid::corpus

#endif // NADROID_CORPUS_RANDOMAPP_H
