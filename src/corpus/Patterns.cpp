//===- corpus/Patterns.cpp - Seeded bug/idiom patterns -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"

using namespace nadroid;
using namespace nadroid::corpus;
using namespace nadroid::ir;
using report::PairType;

const char *corpus::seedKindName(SeedKind Kind) {
  switch (Kind) {
  case SeedKind::HarmfulUaf:
    return "harmful";
  case SeedKind::FalseMhb:
    return "false-mhb";
  case SeedKind::FalseIg:
    return "false-ig";
  case SeedKind::FalseIgInterproc:
    return "false-ig-interproc";
  case SeedKind::FalseIa:
    return "false-ia";
  case SeedKind::FalseRhb:
    return "false-rhb";
  case SeedKind::FalseChb:
    return "false-chb";
  case SeedKind::FalsePhb:
    return "false-phb";
  case SeedKind::RhbProved:
    return "rhb-proved";
  case SeedKind::RhbRacy:
    return "rhb-racy";
  case SeedKind::ChbProved:
    return "chb-proved";
  case SeedKind::ChbRacy:
    return "chb-racy";
  case SeedKind::ChbResumeRacy:
    return "chb-resume-racy";
  case SeedKind::PhbProved:
    return "phb-proved";
  case SeedKind::PhbRacy:
    return "phb-racy";
  case SeedKind::RhbRepeatProved:
    return "rhb-repeat-proved";
  case SeedKind::RhbRepeatRacy:
    return "rhb-repeat-racy";
  case SeedKind::ChbDeepProved:
    return "chb-deep-proved";
  case SeedKind::ChbRepeatProved:
    return "chb-repeat-proved";
  case SeedKind::ChbRepeatRacy:
    return "chb-repeat-racy";
  case SeedKind::PhbChainProved:
    return "phb-chain-proved";
  case SeedKind::PhbChainRacy:
    return "phb-chain-racy";
  case SeedKind::FalseMa:
    return "false-ma";
  case SeedKind::FalseUr:
    return "false-ur";
  case SeedKind::FalseTt:
    return "false-tt";
  case SeedKind::FpPathInsens:
    return "fp-path-insensitive";
  case SeedKind::FpPointsTo:
    return "fp-points-to";
  case SeedKind::FpNotReach:
    return "fp-not-reachable";
  case SeedKind::FpMissingHb:
    return "fp-missing-hb";
  case SeedKind::FnOpaquePath:
    return "fn-opaque-path";
  case SeedKind::FnChbErrorPath:
    return "fn-chb-error-path";
  case SeedKind::FnFragment:
    return "fn-fragment";
  case SeedKind::ProtoReceiverLeak:
    return "proto-receiver-leak";
  case SeedKind::ProtoReceiverClean:
    return "proto-receiver-clean";
  case SeedKind::ProtoBindLeak:
    return "proto-bind-leak";
  case SeedKind::ProtoBindClean:
    return "proto-bind-clean";
  case SeedKind::ProtoPostLeak:
    return "proto-post-leak";
  case SeedKind::ProtoPostClean:
    return "proto-post-clean";
  case SeedKind::ProtoUnregNoReg:
    return "proto-unreg-noreg";
  case SeedKind::ProtoUnregClean:
    return "proto-unreg-clean";
  case SeedKind::ProtoUnbindNoBind:
    return "proto-unbind-nobind";
  case SeedKind::ProtoUnbindClean:
    return "proto-unbind-clean";
  }
  return "?";
}

std::string PatternEmitter::tag() { return Prefix + std::to_string(Index++); }

PatternEmitter::Host PatternEmitter::makeHost(const std::string &Tag,
                                              bool Manifest) {
  Host H;
  H.Payload = B.makeClass("Obj" + Tag, ClassKind::Plain);
  Method *Use = B.makeMethod(H.Payload, "use");
  B.emitReturn();
  (void)Use;

  H.Activity = B.makeClass("Act" + Tag, ClassKind::Activity);
  H.F = B.addField(H.Activity, "f" + Tag, H.Payload);
  B.makeMethod(H.Activity, "onCreate");
  Local *X = B.emitNew("x", H.Payload);
  B.emitStore(B.thisLocal(), H.F, X);
  if (Manifest)
    B.program().addManifestComponent(H.Activity);
  return H;
}

void PatternEmitter::record(SeedKind Kind, const Field *F, const Method *Use,
                            const Method *Free, PairType Type) {
  SeededBug Bug;
  Bug.Kind = Kind;
  Bug.FieldName = F->qualifiedName();
  Bug.UseMethod = Use ? Use->qualifiedName() : "";
  Bug.FreeMethod = Free ? Free->qualifiedName() : "";
  Bug.ExpectedType = Type;
  Seeds.push_back(std::move(Bug));
}

//===----------------------------------------------------------------------===//
// Harmful patterns
//===----------------------------------------------------------------------===//

void PatternEmitter::harmfulEcEc() {
  Host H = makeHost(tag());
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  Method *Free = B.makeMethod(H.Activity, "onCreateOptionsMenu");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::HarmfulUaf, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::harmfulEcPc() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Conn = B.makeClass("Conn" + T, ClassKind::ServiceConnection);
  Field *ActF = B.addField(Conn, "act", H.Activity);
  B.makeMethod(Conn, "onServiceConnected");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *X = B.emitNew("x", H.Payload);
  B.emitStore(A, H.F, X);
  Method *Free = B.makeMethod(Conn, "onServiceDisconnected");
  A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, H.F, nullptr);

  B.makeMethod(H.Activity, "onStart");
  Local *C = B.emitNew("c", Conn);
  B.emitStore(C, ActF, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "bindService", {C});

  Method *Use = B.makeMethod(H.Activity, "onCreateContextMenu");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::HarmfulUaf, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::harmfulPcPc() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Run = B.makeClass("Run" + T, ClassKind::Runnable);
  Field *RunAct = B.addField(Run, "act", H.Activity);
  Method *Use = B.makeMethod(Run, "run");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), RunAct);
  Local *U = B.local("u");
  B.emitLoad(U, A, H.F);
  B.emitCall(nullptr, U, "use");

  Clazz *Conn = B.makeClass("Conn" + T, ClassKind::ServiceConnection);
  Field *ConnAct = B.addField(Conn, "act", H.Activity);
  Method *Free = B.makeMethod(Conn, "onServiceDisconnected");
  A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ConnAct);
  B.emitStore(A, H.F, nullptr);

  B.makeMethod(H.Activity, "onStart");
  Local *C = B.emitNew("c", Conn);
  B.emitStore(C, ConnAct, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "bindService", {C});

  B.makeMethod(H.Activity, "onClick");
  Local *R = B.emitNew("r", Run);
  B.emitStore(R, RunAct, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "runOnUiThread", {R});
  record(SeedKind::HarmfulUaf, H.F, Use, Free, PairType::PcPc);
}

void PatternEmitter::harmfulCNt() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Killer = B.makeClass("Killer" + T, ClassKind::ThreadClass);
  Field *ActF = B.addField(Killer, "act", H.Activity);
  Method *Free = B.makeMethod(Killer, "run");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, H.F, nullptr);

  B.makeMethod(H.Activity, "onStart");
  Local *K = B.emitNew("t", Killer);
  B.emitStore(K, ActF, B.thisLocal());
  B.emitCall(nullptr, K, "start");

  // Figure 1(c): the guard does not help — no atomicity against the
  // thread.
  Method *Use = B.makeMethod(H.Activity, "onPause");
  Local *G = B.local("g");
  B.emitLoad(G, B.thisLocal(), H.F);
  B.beginIfNotNull(G);
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  B.endIf();
  record(SeedKind::HarmfulUaf, H.F, Use, Free, PairType::CNt);
}

void PatternEmitter::harmfulCRt() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Killer = B.makeClass("Killer" + T, ClassKind::ThreadClass);
  Field *ActF = B.addField(Killer, "act", H.Activity);
  Method *Free = B.makeMethod(Killer, "run");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, H.F, nullptr);

  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *K = B.emitNew("t", Killer);
  B.emitStore(K, ActF, B.thisLocal());
  B.emitCall(nullptr, K, "start");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::HarmfulUaf, H.F, Use, Free, PairType::CRt);
}

void PatternEmitter::harmfulAsyncVsDestroy() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Task = B.makeClass("Task" + T, ClassKind::AsyncTask);
  Task->setOuterClass(H.Activity); // anonymous inner task: DEvA sees it
  Field *ActF = B.addField(Task, "act", H.Activity);
  B.makeMethod(Task, "doInBackground");
  B.emitCall(nullptr, B.thisLocal(), "publishProgress");
  Method *Use = B.makeMethod(Task, "onProgressUpdate");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *U = B.local("u");
  B.emitLoad(U, A, H.F);
  B.emitCall(nullptr, U, "use");

  B.makeMethod(H.Activity, "onLocationChanged");
  Local *TK = B.emitNew("t", Task);
  B.emitStore(TK, ActF, B.thisLocal());
  B.emitCall(nullptr, TK, "execute");

  Method *Free = B.makeMethod(H.Activity, "onDestroy");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::HarmfulUaf, H.F, Use, Free, PairType::EcPc);
}

//===----------------------------------------------------------------------===//
// Filter-target idioms
//===----------------------------------------------------------------------===//

void PatternEmitter::falseMhbLifecycle(unsigned Uses) {
  Host H = makeHost(tag());
  Method *Use = B.makeMethod(H.Activity, "onClick");
  for (unsigned I = 0; I < Uses; ++I) {
    Local *U = B.local("u" + std::to_string(I));
    B.emitLoad(U, B.thisLocal(), H.F);
    B.emitCall(nullptr, U, "use");
  }
  Method *Free = B.makeMethod(H.Activity, "onDestroy");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::FalseMhb, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::falseMhbService(unsigned Uses) {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Conn = B.makeClass("Conn" + T, ClassKind::ServiceConnection);
  Field *ActF = B.addField(Conn, "act", H.Activity);
  Method *Use = B.makeMethod(Conn, "onServiceConnected");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  for (unsigned I = 0; I < Uses; ++I) {
    Local *U = B.local("u" + std::to_string(I));
    B.emitLoad(U, A, H.F);
    B.emitCall(nullptr, U, "use");
  }
  Method *Free = B.makeMethod(Conn, "onServiceDisconnected");
  A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, H.F, nullptr);

  // Bound once, from onCreate: connect-before-disconnect then holds per
  // the single binding. (Rebinding from a repeatable callback would let
  // a second connection's onServiceConnected observe the first's free —
  // the same per-instance caveat as MHB-AsyncTask.)
  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  Local *C = B.emitNew("c", Conn);
  B.emitStore(C, ActF, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "bindService", {C});
  record(SeedKind::FalseMhb, H.F, Use, Free, PairType::PcPc);
}

void PatternEmitter::falseMhbAsync() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Task = B.makeClass("Task" + T, ClassKind::AsyncTask);
  Field *ActF = B.addField(Task, "act", H.Activity);
  Method *Use = B.makeMethod(Task, "doInBackground");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *U = B.local("u");
  B.emitLoad(U, A, H.F);
  B.emitCall(nullptr, U, "use");
  Method *Free = B.makeMethod(Task, "onPostExecute");
  A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, H.F, nullptr);

  // Executed from onCreate: exactly one task instance, so the MHB
  // ordering is airtight dynamically too. (Executing from a repeatable
  // callback would let two instances cross-interleave — the latent
  // per-instance limitation MHB-AsyncTask shares with Chord's heap
  // naming; see InterpSemantics.AsyncTaskOrderIsOnlyPerInstance.)
  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  Local *TK = B.emitNew("t", Task);
  B.emitStore(TK, ActF, B.thisLocal());
  B.emitCall(nullptr, TK, "execute");
  record(SeedKind::FalseMhb, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::falseIg(unsigned Uses) {
  Host H = makeHost(tag());
  // Check-then-deref shape (Figure 4(b) as compiled): each load feeds its
  // own null test and is dereferenced only under it.
  Method *Use = B.makeMethod(H.Activity, "onClick");
  for (unsigned I = 0; I < Uses; ++I) {
    Local *U = B.local("u" + std::to_string(I));
    B.emitLoad(U, B.thisLocal(), H.F);
    B.beginIfNotNull(U);
    B.emitCall(nullptr, U, "use");
    B.endIf();
  }
  Method *Free = B.makeMethod(H.Activity, "onCreateOptionsMenu");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::FalseIg, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::falseIgInterproc() {
  Host H = makeHost(tag());
  // §8.7: the dereference lives in a helper; only the caller checks.
  Method *Helper = B.makeMethod(H.Activity, "readIt");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");

  B.makeMethod(H.Activity, "onClick");
  Local *G = B.local("g");
  B.emitLoad(G, B.thisLocal(), H.F);
  B.beginIfNotNull(G);
  B.emitCall(nullptr, B.thisLocal(), "readIt");
  B.endIf();

  Method *Free = B.makeMethod(H.Activity, "onCreateOptionsMenu");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::FalseIgInterproc, H.F, Helper, Free, PairType::EcEc);
}

void PatternEmitter::falseIa(unsigned Uses) {
  Host H = makeHost(tag());
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *X = B.emitNew("x", H.Payload);
  B.emitStore(B.thisLocal(), H.F, X);
  for (unsigned I = 0; I < Uses; ++I) {
    Local *U = B.local("u" + std::to_string(I));
    B.emitLoad(U, B.thisLocal(), H.F);
    B.emitCall(nullptr, U, "use");
  }
  Method *Free = B.makeMethod(H.Activity, "onCreateOptionsMenu");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::FalseIa, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::falseRhb() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onPause");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  B.makeMethod(H.Activity, "onResume");
  Local *X = B.emitNew("x", H.Payload);
  B.emitStore(B.thisLocal(), H.F, X);
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::FalseRhb, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::falseChb() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onClick");
  B.emitFinish();
  B.emitStore(B.thisLocal(), H.F, nullptr);
  Method *Use = B.makeMethod(H.Activity, "onLongClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::FalseChb, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::falsePhb() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *H2 = B.makeClass("Hdl" + T, ClassKind::Handler);
  Field *ActF = B.addField(H2, "act", H.Activity);
  Method *Free = B.makeMethod(H2, "handleMessage");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, H.F, nullptr);

  Field *HandlerF = B.addField(H.Activity, "h" + T, H2);
  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  Local *HH = B.emitNew("hh", H2);
  B.emitStore(HH, ActF, B.thisLocal());
  B.emitStore(B.thisLocal(), HandlerF, HH);

  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *M = B.local("m");
  B.emitLoad(M, B.thisLocal(), HandlerF);
  B.emitCall(nullptr, M, "sendMessage");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::FalsePhb, H.F, Use, Free, PairType::EcPc);
}

//===----------------------------------------------------------------------===//
// Refutation-engine variants (--refute)
//===----------------------------------------------------------------------===//

void PatternEmitter::rhbProved() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onPause");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  // Unconditional re-allocation: every path through onResume leaves the
  // field fresh, so the refuter's revive edge applies.
  B.makeMethod(H.Activity, "onResume");
  Local *X = B.emitNew("x", H.Payload);
  B.emitStore(B.thisLocal(), H.F, X);
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::RhbProved, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::rhbRacy() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onPause");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  // Branch-only re-allocation: RHB's may-analysis still fires, but the
  // history pause -> resume(alloc skipped) -> click crashes.
  B.makeMethod(H.Activity, "onResume");
  B.beginIfUnknown();
  Local *X = B.emitNew("x", H.Payload);
  B.emitStore(B.thisLocal(), H.F, X);
  B.endIf();
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::RhbRacy, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::chbProved() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onClick");
  B.emitFinish(); // dominates the free: the kill edge is uncontested
  B.emitStore(B.thisLocal(), H.F, nullptr);
  Method *Use = B.makeMethod(H.Activity, "onLongClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::ChbProved, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::chbRacy() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onClick");
  B.beginIfUnknown();
  B.emitFinish(); // error path only: no domination, no kill edge
  B.endIf();
  B.emitStore(B.thisLocal(), H.F, nullptr);
  Method *Use = B.makeMethod(H.Activity, "onLongClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::ChbRacy, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::chbResumeRacy() {
  Host H = makeHost(tag());
  // The free lives in onResume and onPause is never overridden: the only
  // way the free runs is the framework onResume owed after onCreate.
  // finish() sits on an error branch, so it does not dominate the free
  // (no kill edge), yet CHB's may-analysis prunes the pair anyway. The
  // history create -> resume(free, no finish) -> click crashes.
  Method *Free = B.makeMethod(H.Activity, "onResume");
  B.beginIfUnknown();
  B.emitFinish();
  B.endIf();
  B.emitStore(B.thisLocal(), H.F, nullptr);
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::ChbResumeRacy, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::phbProved() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Run = B.makeClass("Run" + T, ClassKind::Runnable);
  Field *ActF = B.addField(Run, "act", H.Activity);
  Method *Free = B.makeMethod(Run, "run");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, H.F, nullptr);

  // onDestroy uses, then posts the cleanup runnable that frees. PHB
  // orders the pair; the refuter proves it — onDestroy is the last
  // lifecycle activation, so nothing uses after the postee's free.
  Method *Use = B.makeMethod(H.Activity, "onDestroy");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  Local *R = B.emitNew("r", Run);
  B.emitStore(R, ActF, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "runOnUiThread", {R});
  record(SeedKind::PhbProved, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::phbRacy() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Run = B.makeClass("Run" + T, ClassKind::Runnable);
  Field *ActF = B.addField(Run, "act", H.Activity);
  Method *Free = B.makeMethod(Run, "run");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  B.emitStore(A, H.F, nullptr);

  // onClick posts the freeing runnable and uses. PHB orders each click
  // against its own postee, but a second click lands after the first
  // postee's free — the refuter's counterexample history.
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *R = B.emitNew("r", Run);
  B.emitStore(R, ActF, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "runOnUiThread", {R});
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::PhbRacy, H.F, Use, Free, PairType::EcPc);
}

//===----------------------------------------------------------------------===//
// History-refuter variants (--refute-v2)
//===----------------------------------------------------------------------===//

void PatternEmitter::rhbRepeatProved() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onPause");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  // onResume itself re-allocates on a branch only, so the tier-1
  // intra-procedural must-analysis sees no revive and assumes. But the
  // refill helper it always calls re-allocates unconditionally — the
  // tier-2 inter-procedural revive refinement proves the pair.
  B.makeMethod(H.Activity, "onResume");
  B.beginIfUnknown();
  Local *X = B.emitNew("x", H.Payload);
  B.emitStore(B.thisLocal(), H.F, X);
  B.endIf();
  B.emitCall(nullptr, B.thisLocal(), "refill");
  B.makeMethod(H.Activity, "refill");
  Local *Y = B.emitNew("y", H.Payload);
  B.emitStore(B.thisLocal(), H.F, Y);
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::RhbRepeatProved, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::rhbRepeatRacy() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onPause");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  // Like rhbRepeatProved, but the helper also re-allocates on a branch
  // only. No depth of inter-procedural reasoning turns that into a
  // revive; the history pause -> resume(both allocs skipped) -> click
  // is a stable witness.
  B.makeMethod(H.Activity, "onResume");
  B.beginIfUnknown();
  Local *X = B.emitNew("x", H.Payload);
  B.emitStore(B.thisLocal(), H.F, X);
  B.endIf();
  B.emitCall(nullptr, B.thisLocal(), "refill");
  B.makeMethod(H.Activity, "refill");
  B.beginIfUnknown();
  Local *Y = B.emitNew("y", H.Payload);
  B.emitStore(B.thisLocal(), H.F, Y);
  B.endIf();
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::RhbRepeatRacy, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::chbDeepProved() {
  Host H = makeHost(tag());
  // The freeing onClick calls a teardown helper whose finish() dominates
  // the helper's exit. Tier 1 only scans the free's own method for a
  // dominating cancel and assumes; tier 2's inter-procedural kill
  // refinement admits the helper's finish and proves the pair.
  Method *Free = B.makeMethod(H.Activity, "onClick");
  B.emitCall(nullptr, B.thisLocal(), "teardown");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  B.makeMethod(H.Activity, "teardown");
  B.emitFinish();
  Method *Use = B.makeMethod(H.Activity, "onLongClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::ChbDeepProved, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::chbRepeatProved() {
  Host H = makeHost(tag());
  // Same helper-finish kill as chbDeepProved, but the use is a system
  // callback that fires unboundedly often and even while paused — no
  // lifecycle phase orders it, only the kill edge does.
  Method *Free = B.makeMethod(H.Activity, "onClick");
  B.emitCall(nullptr, B.thisLocal(), "teardown");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  B.makeMethod(H.Activity, "teardown");
  B.emitFinish();
  Method *Use = B.makeMethod(H.Activity, "onLocationChanged");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::ChbRepeatProved, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::chbRepeatRacy() {
  Host H = makeHost(tag());
  // The teardown helper calls finish() on an error branch only: at no
  // inter-procedural depth does the helper become a must-cancel, so the
  // witness click(free, no finish) -> onLocationChanged is stable.
  Method *Free = B.makeMethod(H.Activity, "onClick");
  B.emitCall(nullptr, B.thisLocal(), "teardown");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  B.makeMethod(H.Activity, "teardown");
  B.beginIfUnknown();
  B.emitFinish();
  B.endIf();
  Method *Use = B.makeMethod(H.Activity, "onLocationChanged");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::ChbRepeatRacy, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::phbChainProved() {
  Host H = makeHost(tag());
  std::string T = innerTag();
  // An 11-deep relay of posted runnables: onDestroy posts link 1, each
  // link posts the next, the last link frees. With onCreate, onDestroy
  // and 11 links, the pair involves 13 interacting callbacks — beyond
  // tier 1's per-model thread capacity (demoted to assumed) but inside
  // tier 2's. The proof is the lifecycle: onDestroy never re-activates
  // after Destroyed, so its use precedes the chain's free.
  constexpr unsigned Depth = 11;
  std::vector<Clazz *> Runs;
  std::vector<Field *> ActFs;
  for (unsigned I = 0; I < Depth; ++I) {
    Clazz *Run =
        B.makeClass("Run" + T + "L" + std::to_string(I + 1), ClassKind::Runnable);
    Runs.push_back(Run);
    ActFs.push_back(B.addField(Run, "act", H.Activity));
  }
  Method *Free = nullptr;
  for (unsigned I = 0; I < Depth; ++I) {
    Method *M = B.makeMethod(Runs[I], "run");
    Local *A = B.local("a");
    B.emitLoad(A, B.thisLocal(), ActFs[I]);
    if (I + 1 < Depth) {
      Local *R = B.emitNew("r", Runs[I + 1]);
      B.emitStore(R, ActFs[I + 1], A);
      B.emitCall(nullptr, A, "runOnUiThread", {R});
    } else {
      B.emitStore(A, H.F, nullptr);
      Free = M;
    }
  }
  Method *Use = B.makeMethod(H.Activity, "onDestroy");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  Local *R = B.emitNew("r", Runs[0]);
  B.emitStore(R, ActFs[0], B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "runOnUiThread", {R});
  record(SeedKind::PhbChainProved, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::phbChainRacy() {
  Host H = makeHost(tag());
  std::string T = innerTag();
  // A short 2-deep chain, but posted from onClick: PHB orders each
  // click against its own chain, yet a second click lands after the
  // first chain's free. Racy at both tiers.
  Clazz *Run1 = B.makeClass("Run" + T + "L1", ClassKind::Runnable);
  Field *ActF1 = B.addField(Run1, "act", H.Activity);
  Clazz *Run2 = B.makeClass("Run" + T + "L2", ClassKind::Runnable);
  Field *ActF2 = B.addField(Run2, "act", H.Activity);
  B.makeMethod(Run1, "run");
  Local *A1 = B.local("a");
  B.emitLoad(A1, B.thisLocal(), ActF1);
  Local *R2 = B.emitNew("r", Run2);
  B.emitStore(R2, ActF2, A1);
  B.emitCall(nullptr, A1, "runOnUiThread", {R2});
  Method *Free = B.makeMethod(Run2, "run");
  Local *A2 = B.local("a");
  B.emitLoad(A2, B.thisLocal(), ActF2);
  B.emitStore(A2, H.F, nullptr);
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *R1 = B.emitNew("r", Run1);
  B.emitStore(R1, ActF1, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "runOnUiThread", {R1});
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::PhbChainRacy, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::falseMa() {
  Host H = makeHost(tag());
  B.makeMethod(H.Activity, "mk");
  Local *R = B.emitNew("r", H.Payload);
  B.emitReturn(R);

  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *TV = B.local("t");
  B.emitCall(TV, B.thisLocal(), "mk");
  B.emitStore(B.thisLocal(), H.F, TV);
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");

  Method *Free = B.makeMethod(H.Activity, "onCreateOptionsMenu");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::FalseMa, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::falseUr(unsigned Uses) {
  Host H = makeHost(tag());
  Method *Log = B.makeMethod(H.Activity, "log");
  Log->addParam("p");
  B.emitReturn();

  Method *Use = B.makeMethod(H.Activity, "onClick");
  for (unsigned I = 0; I < Uses; ++I) {
    Local *G = B.local("g" + std::to_string(I));
    B.emitLoad(G, B.thisLocal(), H.F);
    B.emitCall(nullptr, B.thisLocal(), "log", {G});
  }
  Method *Free = B.makeMethod(H.Activity, "onCreateOptionsMenu");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::FalseUr, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::falseTt() {
  std::string T = tag();
  Clazz *Payload = B.makeClass("Obj" + T, ClassKind::Plain);
  B.makeMethod(Payload, "use");
  B.emitReturn();

  Clazz *Shared = B.makeClass("Shared" + T, ClassKind::Plain);
  Field *SF = B.addField(Shared, "f" + T, Payload);

  Clazz *TU = B.makeClass("UserThread" + T, ClassKind::ThreadClass);
  Field *TUS = B.addField(TU, "s", Shared);
  Method *Use = B.makeMethod(TU, "run");
  Local *HS = B.local("h");
  B.emitLoad(HS, B.thisLocal(), TUS);
  Local *U = B.local("u");
  B.emitLoad(U, HS, SF);
  B.emitCall(nullptr, U, "use");

  Clazz *TF = B.makeClass("FreeThread" + T, ClassKind::ThreadClass);
  Field *TFS = B.addField(TF, "s", Shared);
  Method *Free = B.makeMethod(TF, "run");
  HS = B.local("h");
  B.emitLoad(HS, B.thisLocal(), TFS);
  B.emitStore(HS, SF, nullptr);

  Clazz *Act = B.makeClass("Act" + T, ClassKind::Activity);
  B.program().addManifestComponent(Act);
  B.makeMethod(Act, "onStart");
  Local *S = B.emitNew("s", Shared);
  Local *X = B.emitNew("x", Payload);
  B.emitStore(S, SF, X);
  Local *T1 = B.emitNew("t1", TU);
  B.emitStore(T1, TUS, S);
  B.emitCall(nullptr, T1, "start");
  Local *T2 = B.emitNew("t2", TF);
  B.emitStore(T2, TFS, S);
  B.emitCall(nullptr, T2, "start");
  record(SeedKind::FalseTt, SF, Use, Free, PairType::CNt);
}

//===----------------------------------------------------------------------===//
// Surviving false positives (§8.5)
//===----------------------------------------------------------------------===//

void PatternEmitter::fpPathInsensitive() {
  Host H = makeHost(tag());
  std::string T = innerTag();
  Field *Flag = B.addField(H.Activity, "flag" + T, H.Payload);
  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  Local *FL = B.emitNew("fl", H.Payload);
  B.emitStore(B.thisLocal(), Flag, FL);

  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *G = B.local("g");
  B.emitLoad(G, B.thisLocal(), Flag);
  B.beginIfNotNull(G);
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  B.endIf();

  Method *Free = B.makeMethod(H.Activity, "onCreateOptionsMenu");
  B.emitStore(B.thisLocal(), Flag, nullptr);
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::FpPathInsens, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::fpPointsTo() {
  std::string T = tag();
  Clazz *Payload = B.makeClass("Obj" + T, ClassKind::Plain);
  B.makeMethod(Payload, "use");
  B.emitReturn();
  Clazz *Holder = B.makeClass("Holder" + T, ClassKind::Plain);
  Field *PF = B.addField(Holder, "p" + T, Payload);

  Clazz *Act = B.makeClass("Act" + T, ClassKind::Activity);
  B.program().addManifestComponent(Act);
  Field *Ha = B.addField(Act, "ha", Holder);
  Field *Hb = B.addField(Act, "hb", Holder);

  // A factory shared by both holders: with k=2, both runtime holders are
  // named by the same (site, activity) pair and merge.
  B.makeMethod(Act, "mkHolder");
  Local *R = B.emitNew("r", Holder);
  Local *X = B.emitNew("x", Payload);
  B.emitStore(R, PF, X);
  B.emitReturn(R);

  B.makeMethod(Act, "onCreate");
  Local *A = B.local("a");
  B.emitCall(A, B.thisLocal(), "mkHolder");
  B.emitStore(B.thisLocal(), Ha, A);
  Local *BB = B.local("b");
  B.emitCall(BB, B.thisLocal(), "mkHolder");
  B.emitStore(B.thisLocal(), Hb, BB);

  Method *Use = B.makeMethod(Act, "onClick");
  Local *HL = B.local("h");
  B.emitLoad(HL, B.thisLocal(), Ha);
  Local *U = B.local("u");
  B.emitLoad(U, HL, PF);
  B.emitCall(nullptr, U, "use");

  Method *Free = B.makeMethod(Act, "onCreateOptionsMenu");
  HL = B.local("h2");
  B.emitLoad(HL, B.thisLocal(), Hb);
  B.emitStore(HL, PF, nullptr);
  record(SeedKind::FpPointsTo, PF, Use, Free, PairType::EcEc);
}

void PatternEmitter::fpPointsToKSensitive() {
  std::string T = tag();
  Clazz *Payload = B.makeClass("Obj" + T, ClassKind::Plain);
  B.makeMethod(Payload, "use");
  B.emitReturn();
  Clazz *Holder = B.makeClass("Holder" + T, ClassKind::Plain);
  Field *PF = B.addField(Holder, "p" + T, Payload);
  Clazz *Factory = B.makeClass("Factory" + T, ClassKind::Plain);
  B.makeMethod(Factory, "make");
  Local *R = B.emitNew("r", Holder);
  Local *X = B.emitNew("x", Payload);
  B.emitStore(R, PF, X);
  B.emitReturn(R);

  Clazz *Act = B.makeClass("Act" + T, ClassKind::Activity);
  B.program().addManifestComponent(Act);
  Field *Ha = B.addField(Act, "ha", Holder);
  Field *Hb = B.addField(Act, "hb", Holder);
  B.makeMethod(Act, "onCreate");
  // Two factory *objects*: under k=2 the holders they make are named by
  // their factory, so ha and hb stay apart; under k=1 they merge.
  Local *Fa = B.emitNew("fa", Factory);
  Local *Fb = B.emitNew("fb", Factory);
  Local *A = B.local("a");
  B.emitCall(A, Fa, "make");
  B.emitStore(B.thisLocal(), Ha, A);
  Local *Bv = B.local("b");
  B.emitCall(Bv, Fb, "make");
  B.emitStore(B.thisLocal(), Hb, Bv);

  Method *Use = B.makeMethod(Act, "onClick");
  Local *HL = B.local("h");
  B.emitLoad(HL, B.thisLocal(), Ha);
  Local *U = B.local("u");
  B.emitLoad(U, HL, PF);
  B.emitCall(nullptr, U, "use");

  Method *Free = B.makeMethod(Act, "onCreateOptionsMenu");
  HL = B.local("h2");
  B.emitLoad(HL, B.thisLocal(), Hb);
  B.emitStore(HL, PF, nullptr);
  record(SeedKind::FpPointsTo, PF, Use, Free, PairType::EcEc);
}

void PatternEmitter::fpNotReachable() {
  Host H = makeHost(tag(), /*Manifest=*/false);
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  Method *Free = B.makeMethod(H.Activity, "onCreateOptionsMenu");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::FpNotReach, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::fpMissingHb() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onLongClick");
  B.emitCall(nullptr, B.thisLocal(), "disableClicks");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  Method *Use = B.makeMethod(H.Activity, "onClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::FpMissingHb, H.F, Use, Free, PairType::EcEc);
}

//===----------------------------------------------------------------------===//
// False-negative constructions (§8.6)
//===----------------------------------------------------------------------===//

void PatternEmitter::fnOpaquePath() {
  std::string T = tag();
  Clazz *Payload = B.makeClass("Obj" + T, ClassKind::Plain);
  B.makeMethod(Payload, "use");
  B.emitReturn();
  Clazz *Holder = B.makeClass("Binder" + T, ClassKind::Plain);
  Field *PF = B.addField(Holder, "p" + T, Payload);

  Clazz *Act = B.makeClass("Act" + T, ClassKind::Activity);
  B.program().addManifestComponent(Act);
  B.makeMethod(Act, "onCreate");
  Local *HL = B.emitNew("h", Holder);
  Local *X = B.emitNew("x", Payload);
  B.emitStore(HL, PF, X);
  // The holder round-trips through the framework: statically opaque.
  B.emitCall(nullptr, B.thisLocal(), "stash", {HL});

  Method *Use = B.makeMethod(Act, "onClick");
  Local *H2 = B.local("h2");
  B.emitCall(H2, B.thisLocal(), "fetchStash");
  Local *U = B.local("u");
  B.emitLoad(U, H2, PF);
  B.emitCall(nullptr, U, "use");

  Method *Free = B.makeMethod(Act, "onCreateOptionsMenu");
  Local *H3 = B.local("h3");
  B.emitCall(H3, B.thisLocal(), "fetchStash");
  B.emitStore(H3, PF, nullptr);
  record(SeedKind::FnOpaquePath, PF, Use, Free, PairType::EcEc);
}

void PatternEmitter::fnChbErrorPath() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onClick");
  B.beginIfUnknown();
  B.emitFinish(); // rare error path — CHB's may-analysis still fires
  B.endIf();
  B.emitStore(B.thisLocal(), H.F, nullptr);
  Method *Use = B.makeMethod(H.Activity, "onLongClick");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  record(SeedKind::FnChbErrorPath, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::fnFragment() {
  std::string T = tag();
  Clazz *Payload = B.makeClass("Obj" + T, ClassKind::Plain);
  B.makeMethod(Payload, "use");
  B.emitReturn();

  Clazz *Frag = B.makeClass("Frag" + T, ClassKind::Fragment);
  Field *F = B.addField(Frag, "f" + T, Payload);
  B.makeMethod(Frag, "onCreate");
  Local *X = B.emitNew("x", Payload);
  B.emitStore(B.thisLocal(), F, X);
  Method *Use = B.makeMethod(Frag, "onResume");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");
  Method *Free = B.makeMethod(Frag, "onDestroy");
  B.emitStore(B.thisLocal(), F, nullptr);
  record(SeedKind::FnFragment, F, Use, Free, PairType::EcEc);
}

void PatternEmitter::harmfulOfType(PairType Type) {
  switch (Type) {
  case PairType::EcEc:
    harmfulEcEc();
    return;
  case PairType::EcPc:
    harmfulEcPc();
    return;
  case PairType::PcPc:
    harmfulPcPc();
    return;
  case PairType::CRt:
    harmfulCRt();
    return;
  case PairType::CNt:
    harmfulCNt();
    return;
  }
}

//===----------------------------------------------------------------------===//
// Typestate protocol seeds (--lint)
//===----------------------------------------------------------------------===//

void PatternEmitter::protoReceiverLeak() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  // The receiver must hold the activity, so it is act-wired by hand:
  // the emitRegisterReceiver sugar allocates a fresh, unwired argument.
  Clazz *Rcv = B.makeClass("Rcv" + T, ClassKind::Receiver);
  Field *ActF = B.addField(Rcv, "act", H.Activity);
  Method *Use = B.makeMethod(Rcv, "onReceive");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *U = B.local("u");
  B.emitLoad(U, A, H.F);
  B.emitCall(nullptr, U, "use");

  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  Local *R = B.emitNew("r", Rcv);
  B.emitStore(R, ActF, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "registerReceiver", {R});

  // No unregisterReceiver anywhere: the receiver-leak machine exits
  // onDestroy registered, and the interpreter can land onReceive after
  // the free — the leak's runtime consequence.
  Method *Free = B.makeMethod(H.Activity, "onDestroy");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::ProtoReceiverLeak, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::protoReceiverClean() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Rcv = B.makeClass("Rcv" + T, ClassKind::Receiver);
  Field *ActF = B.addField(Rcv, "act", H.Activity);
  Method *Use = B.makeMethod(Rcv, "onReceive");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *U = B.local("u");
  B.emitLoad(U, A, H.F);
  B.emitCall(nullptr, U, "use");

  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  Local *R = B.emitNew("r", Rcv);
  B.emitStore(R, ActF, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "registerReceiver", {R});

  // Unregistering inside onDestroy is the canonical fix: the machine
  // judges the callback's *exit* state, and no schedule runs onReceive
  // past the unregister.
  Method *Free = B.makeMethod(H.Activity, "onDestroy");
  B.emitUnregisterReceiver();
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::ProtoReceiverClean, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::protoBindLeak() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  // Only onServiceDisconnected: the interpreter auto-connects such a
  // connection at bind, so the disconnect callback is live until an
  // unbind — which never comes.
  Clazz *Conn = B.makeClass("Conn" + T, ClassKind::ServiceConnection);
  Field *ActF = B.addField(Conn, "act", H.Activity);
  Method *Use = B.makeMethod(Conn, "onServiceDisconnected");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *U = B.local("u");
  B.emitLoad(U, A, H.F);
  B.emitCall(nullptr, U, "use");

  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  Local *C = B.emitNew("c", Conn);
  B.emitStore(C, ActF, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "bindService", {C});

  Method *Free = B.makeMethod(H.Activity, "onDestroy");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::ProtoBindLeak, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::protoBindClean() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Conn = B.makeClass("Conn" + T, ClassKind::ServiceConnection);
  Field *ActF = B.addField(Conn, "act", H.Activity);
  Method *Use = B.makeMethod(Conn, "onServiceDisconnected");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *U = B.local("u");
  B.emitLoad(U, A, H.F);
  B.emitCall(nullptr, U, "use");

  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  Local *C = B.emitNew("c", Conn);
  B.emitStore(C, ActF, B.thisLocal());
  B.emitCall(nullptr, B.thisLocal(), "bindService", {C});

  Method *Free = B.makeMethod(H.Activity, "onDestroy");
  B.emitUnbindService();
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::ProtoBindClean, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::protoPostLeak() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Hdl = B.makeClass("Hdl" + T, ClassKind::Handler);
  Clazz *Run = B.makeClass("Run" + T, ClassKind::Runnable);
  Field *ActF = B.addField(Run, "act", H.Activity);
  Method *Use = B.makeMethod(Run, "run");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *U = B.local("u");
  B.emitLoad(U, A, H.F);
  B.emitCall(nullptr, U, "use");

  Field *HandlerF = B.addField(H.Activity, "h" + T, Hdl);
  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  Local *HH = B.emitNew("hh", Hdl);
  B.emitStore(B.thisLocal(), HandlerF, HH);

  // Act-wired by hand for the same reason as the receiver patterns.
  B.makeMethod(H.Activity, "onClick");
  Local *M = B.local("m");
  B.emitLoad(M, B.thisLocal(), HandlerF);
  Local *R = B.emitNew("r", Run);
  B.emitStore(R, ActF, B.thisLocal());
  B.emitCall(nullptr, M, "post", {R});

  Method *Free = B.makeMethod(H.Activity, "onDestroy");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::ProtoPostLeak, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::protoPostClean() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Hdl = B.makeClass("Hdl" + T, ClassKind::Handler);
  Clazz *Run = B.makeClass("Run" + T, ClassKind::Runnable);
  Field *ActF = B.addField(Run, "act", H.Activity);
  Method *Use = B.makeMethod(Run, "run");
  Local *A = B.local("a");
  B.emitLoad(A, B.thisLocal(), ActF);
  Local *U = B.local("u");
  B.emitLoad(U, A, H.F);
  B.emitCall(nullptr, U, "use");

  Field *HandlerF = B.addField(H.Activity, "h" + T, Hdl);
  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  Local *HH = B.emitNew("hh", Hdl);
  B.emitStore(B.thisLocal(), HandlerF, HH);

  B.makeMethod(H.Activity, "onClick");
  Local *M = B.local("m");
  B.emitLoad(M, B.thisLocal(), HandlerF);
  Local *R = B.emitNew("r", Run);
  B.emitStore(R, ActF, B.thisLocal());
  B.emitCall(nullptr, M, "post", {R});

  // Draining the handler before the free both satisfies the machine
  // (exit state idle) and consumes the pending post in the interpreter.
  Method *Free = B.makeMethod(H.Activity, "onDestroy");
  Local *M2 = B.local("m2");
  B.emitLoad(M2, B.thisLocal(), HandlerF);
  B.emitRemoveCallbacksAndMessages(M2);
  B.emitStore(B.thisLocal(), H.F, nullptr);
  record(SeedKind::ProtoPostClean, H.F, Use, Free, PairType::EcPc);
}

void PatternEmitter::protoUnregNoReg() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onPause");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  // A system callback that fires even while paused: the unguarded use
  // crashes after onPause, and the unregister runs with the machine
  // still in its initial state — no registerReceiver exists anywhere.
  Method *Use = B.makeMethod(H.Activity, "onLocationChanged");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  B.emitUnregisterReceiver();
  record(SeedKind::ProtoUnregNoReg, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::protoUnregClean() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  Clazz *Rcv = B.makeClass("Rcv" + T, ClassKind::Receiver);
  B.makeMethod(Rcv, "onReceive");
  B.emitReturn();

  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  B.emitRegisterReceiver(Rcv);

  Method *Free = B.makeMethod(H.Activity, "onPause");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  // Guarded use plus an unregister that is always preceded by the
  // onCreate register: every entry state of onLocationChanged is
  // registered or done, never fresh.
  Method *Use = B.makeMethod(H.Activity, "onLocationChanged");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.beginIfNotNull(U);
  B.emitCall(nullptr, U, "use");
  B.endIf();
  B.emitUnregisterReceiver();
  record(SeedKind::ProtoUnregClean, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::protoUnbindNoBind() {
  Host H = makeHost(tag());
  Method *Free = B.makeMethod(H.Activity, "onPause");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  Method *Use = B.makeMethod(H.Activity, "onLocationChanged");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.emitCall(nullptr, U, "use");
  B.emitUnbindService();
  record(SeedKind::ProtoUnbindNoBind, H.F, Use, Free, PairType::EcEc);
}

void PatternEmitter::protoUnbindClean() {
  Host H = makeHost(tag());
  std::string T = innerTag();

  // A connection with no callbacks at all: the bind only matters to the
  // unbalanced-unbind machine (and stays silent in the interpreter).
  Clazz *Conn = B.makeClass("Conn" + T, ClassKind::ServiceConnection);

  B.setInsertMethod(H.Activity->findOwnMethod("onCreate"));
  B.emitBindService(Conn);

  Method *Free = B.makeMethod(H.Activity, "onPause");
  B.emitStore(B.thisLocal(), H.F, nullptr);
  Method *Use = B.makeMethod(H.Activity, "onLocationChanged");
  Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), H.F);
  B.beginIfNotNull(U);
  B.emitCall(nullptr, U, "use");
  B.endIf();
  B.emitUnbindService();
  record(SeedKind::ProtoUnbindClean, H.F, Use, Free, PairType::EcEc);
}

//===----------------------------------------------------------------------===//
// Benign mass
//===----------------------------------------------------------------------===//

void PatternEmitter::safeFiller(unsigned UiCallbacks, unsigned Posts,
                                unsigned Helpers) {
  std::string T = tag();
  Clazz *Payload = B.makeClass("Obj" + T, ClassKind::Plain);
  B.makeMethod(Payload, "use");
  B.emitReturn();

  Clazz *Act = B.makeClass("Act" + T, ClassKind::Activity);
  B.program().addManifestComponent(Act);
  Method *Create = B.makeMethod(Act, "onCreate");

  for (unsigned I = 0; I < UiCallbacks; ++I) {
    Clazz *L = B.makeClass("Listener" + T + "_" + std::to_string(I),
                           ClassKind::Listener);
    B.makeMethod(L, "onClick");
    Local *X = B.emitNew("x", Payload);
    B.emitCall(nullptr, X, "use");
    B.setInsertMethod(Create);
    B.emitSetOnClickListener(L);
  }
  for (unsigned I = 0; I < Posts; ++I) {
    Clazz *R = B.makeClass("Job" + T + "_" + std::to_string(I),
                           ClassKind::Runnable);
    B.makeMethod(R, "run");
    Local *X = B.emitNew("x", Payload);
    B.emitCall(nullptr, X, "use");
    B.setInsertMethod(Create);
    B.emitRunOnUiThread(R);
  }
  B.setInsertMethod(Create);
  for (unsigned I = 0; I < Helpers; ++I)
    B.emitCall(nullptr, B.thisLocal(), "helper" + std::to_string(I));
  for (unsigned I = 0; I < Helpers; ++I) {
    B.makeMethod(Act, "helper" + std::to_string(I));
    Local *X = B.emitNew("x", Payload);
    B.emitCall(nullptr, X, "use");
    B.emitReturn(X);
  }
}

void PatternEmitter::safeThreads(unsigned Count) {
  std::string T = tag();
  Clazz *Payload = B.makeClass("Obj" + T, ClassKind::Plain);
  B.makeMethod(Payload, "use");
  B.emitReturn();

  Clazz *Act = B.makeClass("Act" + T, ClassKind::Activity);
  B.program().addManifestComponent(Act);
  Method *Start = B.makeMethod(Act, "onStart");
  for (unsigned I = 0; I < Count; ++I) {
    Clazz *W = B.makeClass("Worker" + T + "_" + std::to_string(I),
                           ClassKind::ThreadClass);
    B.makeMethod(W, "run");
    Local *X = B.emitNew("x", Payload);
    B.emitCall(nullptr, X, "use");
    B.setInsertMethod(Start);
    B.emitStartThread(W);
  }
}
