//===- android/FrameworkSpec.h - Declarative framework spec -----*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A declarative specification of the Android framework surface the
/// analyses consume: which method names are callbacks on which class
/// kinds, per-kind traits (entry/posted, looper affinity, activation
/// multiplicity), component lifecycle phase rules, must-order edges, kill
/// (cancellation) rules, and revive windows. The spec replaces the
/// hand-coded tables that used to live in Callbacks.cpp so that
/// threadification, the HB refuter, and the history refuter all read
/// ordering facts from one data source, and extending the framework
/// surface (Fragments, LiveData, ...) becomes a spec edit.
///
/// The format is line-based; `#` starts a comment. Directives:
///
///   spec-version N
///   kind <cb-kind> [entry] [posted] [looper] [needs-resumed]
///        [once-only] [one-per-post]
///   callback <class-kind-list> <cb-kind> <method-name>...
///   phase <callback> from <phase-list> to <phase>
///        [sets-pending] [clears-pending]
///   order <callback> before-all|after-all
///   order <cb-kind> before <cb-kind>
///   kill <api> [covers <cb-kind-list>] scope
///        entry-of-component|target-or-component|target-parent
///        [except <callback-list>] [posted-only]
///   revive-window <free-callback> <revive-callback> <use-cb-kind>
///   protocol <name> states <state-list> initial <state>
///   protocol <name> on <api-token> from <state-list>|any to <state>
///   protocol <name> on-callback <callback> from <state-list>|any to <state>
///   protocol <name> error-call <api-token> in <state-list> <message...>
///   protocol <name> error-at <callback> in <state-list> <message...>
///
/// Protocol directives declare object-protocol typestate machines the
/// Typestate pass checks over the threadification forest: each protocol
/// is a small automaton (at most 8 states) whose transitions fire on
/// framework API calls (`on`, api tokens like registerReceiver or post)
/// or on callback activations (`on-callback`), with error rules that
/// flag an API call made in a bad state (`error-call`) or a bad state
/// still live when a callback runs (`error-at`). The `states` line must
/// come first for its protocol and names the initial state.
///
/// Phase tokens: not-created, resumed, paused, destroyed, and the
/// pseudo-phase resumed-pending (resumed with a framework onResume still
/// owed, e.g. right after onCreate). Class-kind tokens follow
/// ir::classKindName; cb-kind tokens follow android::callbackKindName.
///
/// `parseText` reports syntax errors; `validate` reports semantic ones
/// (unknown callback names, cyclic must-order edges, dangling kill/revive
/// targets). `nadroid --check-spec` runs both and exits nonzero on any
/// diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANDROID_FRAMEWORKSPEC_H
#define NADROID_ANDROID_FRAMEWORKSPEC_H

#include "android/Api.h"
#include "android/Callbacks.h"
#include "ir/Ir.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace nadroid::android {

class FrameworkSpec {
public:
  /// Component lifecycle phases, shared with both refuter tiers.
  enum class Phase : uint8_t {
    NotCreated = 0,
    Resumed = 1,
    Paused = 2,
    Destroyed = 3,
  };
  static constexpr unsigned NumPhases = 4;

  /// Per-callback-kind traits declared by `kind` lines.
  struct KindTraits {
    bool Declared = false;
    bool Entry = false;        ///< Externally invoked by the runtime.
    bool Posted = false;       ///< Triggered from within the app.
    bool Looper = false;       ///< Runs atomically on a looper.
    bool NeedsResumed = false; ///< Activates only while resumed (UI).
    bool OnceOnly = false;     ///< At most one activation per instance.
    bool OnePerPost = false;   ///< At most one activation per post.
  };

  /// A lifecycle phase transition: callback \p Callback may activate when
  /// the component phase is in \p FromMask (or, for FromResumedPending,
  /// resumed with a framework onResume still owed) and moves it to \p To.
  struct PhaseRule {
    std::string Callback;
    uint8_t FromMask = 0; ///< Bit (1 << Phase) per admissible phase.
    bool FromResumedPending = false;
    Phase To = Phase::Resumed;
    bool SetsPending = false;   ///< Activation owes a framework onResume.
    bool ClearsPending = false; ///< Activation discharges the owed resume.
    int Line = 0;
  };

  /// Which threads a cancellation API kills (§6.2.1 made declarative).
  enum class KillScope : uint8_t {
    EntryOfComponent,  ///< Entry callbacks of the target component.
    TargetOrComponent, ///< Covered kinds of the target class, or of the
                       ///< freeing component when the target is unknown.
    TargetParent,      ///< Covered kinds declared on the target class.
  };

  struct KillRule {
    ApiKind Api = ApiKind::None;
    std::string ApiToken;
    KillScope Scope = KillScope::EntryOfComponent;
    std::vector<CallbackKind> Covers;
    std::vector<std::string> CoverTokens;
    std::vector<std::string> Except; ///< Callback names exempt from the kill.
    bool PostedOnly = false; ///< Only posted instances are covered.
    int Line = 0;
  };

  /// One declarative object-protocol typestate machine (a `protocol`
  /// directive group). States are indexed into \p States; sets of states
  /// are uint8_t bitmasks (1 << index), which is why a protocol may
  /// declare at most 8 states.
  struct Protocol {
    std::string Name;
    std::vector<std::string> States;
    unsigned Initial = 0;
    int Line = 0; ///< Line of the `states` declaration.

    /// `on <api> from <mask> to <state>`: the API call moves every
    /// current state in FromMask to To; states outside the mask are kept.
    struct Transition {
      ApiKind Api = ApiKind::None;
      std::string ApiToken;
      uint8_t FromMask = 0;
      uint8_t To = 0;
      int Line = 0;
    };
    std::vector<Transition> Transitions;

    /// `on-callback <cb> from <mask> to <state>`: applied when the named
    /// callback activates, before its body runs.
    struct CallbackTransition {
      std::string Callback;
      uint8_t FromMask = 0;
      uint8_t To = 0;
      int Line = 0;
    };
    std::vector<CallbackTransition> CallbackTransitions;

    /// `error-call`/`error-at`: the protocol is violated when the API is
    /// called (or the callback activates / runs to completion) while the
    /// state is within InMask.
    struct ErrorRule {
      bool AtCallback = false;
      ApiKind Api = ApiKind::None;
      std::string ApiToken;
      std::string Callback;
      uint8_t InMask = 0;
      std::string Message;
      int Line = 0;
    };
    std::vector<ErrorRule> Errors;

    /// Index of \p State in States, or States.size() when unknown.
    size_t stateIndex(const std::string &State) const {
      for (size_t I = 0; I < States.size(); ++I)
        if (States[I] == State)
          return I;
      return States.size();
    }
  };

  /// RHB's revive idiom: frees in \p FreeCallback are re-examined against
  /// re-allocations in \p ReviveCallback for uses of kind \p UseKind.
  struct ReviveWindow {
    std::string FreeCallback;
    std::string ReviveCallback;
    CallbackKind UseKind = CallbackKind::None;
    std::string UseKindToken;
    int Line = 0;
  };

  /// The built-in spec mirroring the paper's framework surface (the table
  /// Callbacks.cpp used to hard-code). Parsed once, never invalid.
  static const FrameworkSpec &builtin();

  /// The built-in spec source text (for --check-spec and tests).
  static const char *builtinText();

  /// Parses \p Text. Syntax diagnostics are appended to \p Diags; returns
  /// false when any were produced. Semantic checks are separate: call
  /// validate() on the result.
  static bool parseText(const std::string &Text, FrameworkSpec &Out,
                        std::vector<std::string> &Diags);

  /// Reads and parses a spec file. Unreadable file => diagnostic + false.
  static bool loadFile(const std::string &Path, FrameworkSpec &Out,
                       std::vector<std::string> &Diags);

  /// Semantic validation: unknown callback names in phase/order/kill/
  /// revive lines, cyclic must-order edges, dangling kill/revive targets,
  /// duplicate or conflicting rules. Empty result == valid.
  std::vector<std::string> validate() const;

  // --- Queries (the Callbacks.h functions delegate here) ---------------
  CallbackKind classify(ir::ClassKind K, const std::string &Name) const;
  bool isEntry(CallbackKind K) const { return traits(K).Entry; }
  bool isPosted(CallbackKind K) const { return traits(K).Posted; }
  bool onLooper(CallbackKind K) const { return traits(K).Looper; }
  bool needsResumed(CallbackKind K) const { return traits(K).NeedsResumed; }
  bool isOnceOnly(CallbackKind K) const { return traits(K).OnceOnly; }
  bool isOnePerPost(CallbackKind K) const { return traits(K).OnePerPost; }

  /// MHB-Lifecycle: must \p A precede \p B within one component instance?
  bool mustPrecedeWithinComponent(const std::string &A,
                                  const std::string &B) const;

  /// MHB-AsyncTask (generalized): must kind \p A precede kind \p B within
  /// one instance? Transitive closure of the spec's `before` edges.
  bool mustPrecedeKinds(CallbackKind A, CallbackKind B) const;

  /// The phase rule governing callback \p Name, or nullptr when the
  /// callback does not drive the component phase machine.
  const PhaseRule *phaseRule(const std::string &Name) const;

  /// True when \p Name's phase rule admits activation from NotCreated —
  /// i.e. the callback that brings the component into existence.
  bool createsComponent(const std::string &Name) const;

  const KillRule *killRule(ApiKind K) const;
  const std::vector<KillRule> &killRules() const { return Kills; }
  const std::vector<ReviveWindow> &reviveWindows() const { return Revives; }
  const std::vector<Protocol> &protocols() const { return Protocols; }

  unsigned specVersion() const { return Version; }

  /// Human-readable one-line stats for --check-spec.
  std::string summary() const;

private:
  const KindTraits &traits(CallbackKind K) const;

  unsigned Version = 0;
  /// (class kind, method name) -> callback kind.
  std::map<std::pair<int, std::string>, CallbackKind> Registry;
  /// Every registered callback method name.
  std::set<std::string> Names;
  KindTraits Traits[14] = {};
  std::vector<PhaseRule> Phases;
  std::set<std::string> BeforeAll, AfterAll;
  /// Raw `A before B` kind edges, and their transitive closure.
  std::vector<std::pair<CallbackKind, CallbackKind>> OrderEdges;
  bool OrderClosure[14][14] = {};
  std::vector<KillRule> Kills;
  std::vector<ReviveWindow> Revives;
  std::vector<Protocol> Protocols;
  bool SawVersion = false;

  friend struct SpecParser;
};

} // namespace nadroid::android

#endif // NADROID_ANDROID_FRAMEWORKSPEC_H
