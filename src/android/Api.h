//===- android/Api.h - Android framework API classification -----*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies CallStmts against the Android framework APIs whose
/// concurrency semantics the paper's modeling recognizes (§4): posting
/// (Handler.post/sendMessage, View.post, runOnUiThread), registration
/// (bindService, registerReceiver, set*Listener, requestLocationUpdates),
/// task/thread creation (AsyncTask.execute, Thread.start,
/// publishProgress), and the cancellation APIs the CHB filter consumes
/// (§6.2.1: finish, unbindService, unregisterReceiver,
/// removeCallbacksAndMessages).
///
/// Resolution is syntactic, mirroring nAdroid: the receiver/argument class
/// comes from intra-procedural allocation inference. A call whose target
/// class cannot be resolved is treated as an ordinary call — exactly the
/// imprecision that produces the paper's framework-round-trip false
/// negatives (Table 2).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANDROID_API_H
#define NADROID_ANDROID_API_H

#include "ir/LocalInfo.h"
#include "ir/Stmt.h"

#include <map>

namespace nadroid::android {

enum class ApiKind {
  None,               ///< Ordinary application call.
  BindService,        ///< bindService(conn): installs ServiceConnection PCs.
  UnbindService,      ///< unbindService(): cancels connection callbacks.
  RegisterReceiver,   ///< registerReceiver(r): installs onReceive PC.
  UnregisterReceiver, ///< unregisterReceiver(): cancels onReceive.
  SetListener,        ///< set*Listener/requestLocationUpdates: installs ECs.
  HandlerPost,        ///< post(runnable): posts Runnable.run to the looper.
  HandlerSend,        ///< sendMessage(): posts handleMessage to the looper.
  RemoveCallbacks,    ///< removeCallbacksAndMessages(): cancels posts.
  RunOnUiThread,      ///< runOnUiThread(runnable): posts to the UI looper.
  AsyncExecute,       ///< AsyncTask.execute(): spawns the task machinery.
  ThreadStart,        ///< Thread.start(): spawns a native thread.
  PublishProgress,    ///< publishProgress(): posts onProgressUpdate.
  Finish,             ///< Activity.finish(): cancels the activity's ECs.
};

const char *apiKindName(ApiKind Kind);

/// The classification result for one CallStmt.
struct ApiCallInfo {
  ApiKind Kind = ApiKind::None;
  /// The class whose callbacks the API installs/posts/cancels:
  ///  - BindService/RegisterReceiver/SetListener/HandlerPost/RunOnUiThread:
  ///    the argument's class (ServiceConnection / Receiver / Listener /
  ///    Runnable).
  ///  - HandlerSend/RemoveCallbacks/AsyncExecute/ThreadStart/
  ///    PublishProgress/Finish: the receiver's class.
  ///  - UnbindService/UnregisterReceiver: the argument's class when
  ///    resolvable, else nullptr (meaning "all of this component's").
  ir::Clazz *Target = nullptr;
  /// For HandlerPost/RunOnUiThread: the receiver's class when resolvable
  /// (the handler the runnable goes through). A BackgroundHandler routes
  /// the callback to its own looper.
  ir::Clazz *Via = nullptr;

  bool isApi() const { return Kind != ApiKind::None; }
};

/// Classifies \p Call within its enclosing method. Returns Kind == None
/// for ordinary calls and for framework-looking calls whose target class
/// cannot be resolved syntactically.
ApiCallInfo classifyApiCall(const ir::CallStmt &Call);

/// As above, reusing a prebuilt per-method type inference (the fast path
/// ApiIndex uses when classifying every call of a method).
ApiCallInfo classifyApiCall(const ir::CallStmt &Call,
                            const ir::LocalTypeInference &Types);

/// True for the cancellation APIs the CHB filter recognizes.
bool isCancellationApi(ApiKind Kind);

/// Caches classifyApiCall over a whole program. Classification runs
/// intra-procedural type inference, so the hot analyses (points-to sweeps,
/// threadification, CHB) share this index instead of re-deriving it.
class ApiIndex {
public:
  /// Builds the index for every CallStmt in \p P.
  explicit ApiIndex(const ir::Program &P);

  /// Returns the cached classification (Kind == None for ordinary calls
  /// and for calls outside the indexed program).
  const ApiCallInfo &lookup(const ir::CallStmt &Call) const;

private:
  std::map<const ir::CallStmt *, ApiCallInfo> Cache;
  ApiCallInfo NoneInfo;
};

} // namespace nadroid::android

#endif // NADROID_ANDROID_API_H
