//===- android/SyntacticReach.h - Syntactic CHA reachability ---*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap syntactic method reachability: from a root method, follow call
/// statements whose receiver class can be inferred intra-procedurally.
/// Framework-API calls are not followed (they are spawn edges, not call
/// edges). This is the walk threadification and the CHB cancel-reach
/// analysis use; the precise points-to call graph supersedes it inside the
/// detector itself.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANDROID_SYNTACTICREACH_H
#define NADROID_ANDROID_SYNTACTICREACH_H

#include "android/Api.h"
#include "ir/Stmt.h"

#include <vector>

namespace nadroid::android {

/// Returns \p Root plus every method reachable from it over ordinary
/// (non-API) calls; deterministic order (BFS discovery).
std::vector<ir::Method *>
collectReachableMethods(ir::Method *Root, const android::ApiIndex &Apis);

} // namespace nadroid::android

#endif // NADROID_ANDROID_SYNTACTICREACH_H
