//===- android/Callbacks.h - Android callback model -------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Android framework callback model: which method names the framework
/// invokes on which class kinds, whether a callback is an Entry Callback
/// (externally invoked by the runtime — lifecycle, UI, system events) or a
/// Posted Callback (triggered from within the app — Handler, Service
/// connection, Receiver, AsyncTask), and the statically-sound
/// must-happens-before relations of §6.1.1. This plays the role of
/// FlowDroid's listener/callback list in the original nAdroid.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_ANDROID_CALLBACKS_H
#define NADROID_ANDROID_CALLBACKS_H

#include "ir/Ir.h"

#include <string>

namespace nadroid::android {

/// Fine-grained callback classification.
enum class CallbackKind {
  None,            ///< Not a framework callback.
  Lifecycle,       ///< Activity/Service lifecycle (onCreate, onResume, ...).
  Ui,              ///< UI interaction (onClick, onCreateContextMenu, ...).
  SystemEvent,     ///< System/sensor events (onLocationChanged, ...).
  ServiceConnect,  ///< ServiceConnection.onServiceConnected.
  ServiceDisconn,  ///< ServiceConnection.onServiceDisconnected.
  Receive,         ///< BroadcastReceiver.onReceive.
  HandleMessage,   ///< Handler.handleMessage.
  RunnableRun,     ///< Runnable.run (posted to a looper).
  ThreadRun,       ///< Thread.run (a native thread body).
  AsyncPre,        ///< AsyncTask.onPreExecute.
  AsyncBackground, ///< AsyncTask.doInBackground (native thread).
  AsyncProgress,   ///< AsyncTask.onProgressUpdate.
  AsyncPost,       ///< AsyncTask.onPostExecute.
};

const char *callbackKindName(CallbackKind Kind);

/// Classifies method \p Name on a class of kind \p Kind.
CallbackKind classifyCallback(ir::ClassKind Kind, const std::string &Name);

/// True for callbacks the Android runtime invokes externally on a
/// component/listener (the paper's Entry Callbacks): lifecycle, UI, and
/// system-event callbacks.
bool isEntryCallbackKind(CallbackKind Kind);

/// True for callbacks triggered from within the application (the paper's
/// Posted Callbacks): Handler, Service connection, registered Receiver,
/// and AsyncTask looper-side callbacks.
bool isPostedCallbackKind(CallbackKind Kind);

/// True when the callback runs on a looper thread (atomic w.r.t. other
/// callbacks of the same looper); false for doInBackground/Thread.run.
bool runsOnLooper(CallbackKind Kind);

/// §6.1.1 MHB-Lifecycle: true when, within one component instance,
/// callback \p A must always execute before callback \p B. Statically
/// sound relations only: onCreate precedes everything, everything
/// precedes onDestroy. There is deliberately no onResume/onPause order
/// (the back-button edge makes the lifecycle cyclic).
bool lifecycleMustPrecede(const std::string &A, const std::string &B);

/// §6.1.1 MHB-AsyncTask: must-precede among AsyncTask callbacks of the
/// same task instance (onPreExecute < {doInBackground, onProgressUpdate}
/// < onPostExecute).
bool asyncTaskMustPrecede(CallbackKind A, CallbackKind B);

} // namespace nadroid::android

#endif // NADROID_ANDROID_CALLBACKS_H
