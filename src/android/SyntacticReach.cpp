//===- android/SyntacticReach.cpp - Syntactic CHA reachability ---------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "android/SyntacticReach.h"

#include "ir/LocalInfo.h"

#include <deque>
#include <set>

using namespace nadroid;
using namespace nadroid::android;
using namespace nadroid::ir;

std::vector<Method *>
android::collectReachableMethods(Method *Root,
                                  const android::ApiIndex &Apis) {
  std::vector<Method *> Result;
  std::set<Method *> Visited;
  std::deque<Method *> Pending{Root};
  while (!Pending.empty()) {
    Method *M = Pending.front();
    Pending.pop_front();
    if (!Visited.insert(M).second)
      continue;
    Result.push_back(M);
    LocalTypeInference Types(*M);
    forEachStmt(*M, [&](const Stmt &S) {
      const auto *Call = dyn_cast<CallStmt>(&S);
      if (!Call)
        return;
      if (Apis.lookup(*Call).isApi())
        return;
      LocalClassSet Recv = Types.query(Call->recv());
      for (Clazz *C : Recv.Classes)
        if (Method *Target = C->findMethod(Call->callee()))
          Pending.push_back(Target);
    });
  }
  return Result;
}
