//===- android/Callbacks.cpp - Android callback model ------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The callback tables themselves live in the declarative framework spec
// (FrameworkSpec.cpp); these free functions are thin wrappers over the
// built-in spec so existing call sites keep their signatures.
//
//===----------------------------------------------------------------------===//

#include "android/Callbacks.h"

#include "android/FrameworkSpec.h"

using namespace nadroid;
using namespace nadroid::android;
using ir::ClassKind;

const char *android::callbackKindName(CallbackKind Kind) {
  switch (Kind) {
  case CallbackKind::None:
    return "none";
  case CallbackKind::Lifecycle:
    return "lifecycle";
  case CallbackKind::Ui:
    return "ui";
  case CallbackKind::SystemEvent:
    return "system";
  case CallbackKind::ServiceConnect:
    return "onServiceConnected";
  case CallbackKind::ServiceDisconn:
    return "onServiceDisconnected";
  case CallbackKind::Receive:
    return "onReceive";
  case CallbackKind::HandleMessage:
    return "handleMessage";
  case CallbackKind::RunnableRun:
    return "runnable-run";
  case CallbackKind::ThreadRun:
    return "thread-run";
  case CallbackKind::AsyncPre:
    return "onPreExecute";
  case CallbackKind::AsyncBackground:
    return "doInBackground";
  case CallbackKind::AsyncProgress:
    return "onProgressUpdate";
  case CallbackKind::AsyncPost:
    return "onPostExecute";
  }
  return "none";
}

CallbackKind android::classifyCallback(ClassKind Kind,
                                       const std::string &Name) {
  return FrameworkSpec::builtin().classify(Kind, Name);
}

bool android::isEntryCallbackKind(CallbackKind Kind) {
  return FrameworkSpec::builtin().isEntry(Kind);
}

bool android::isPostedCallbackKind(CallbackKind Kind) {
  return FrameworkSpec::builtin().isPosted(Kind);
}

bool android::runsOnLooper(CallbackKind Kind) {
  return FrameworkSpec::builtin().onLooper(Kind);
}

bool android::lifecycleMustPrecede(const std::string &A,
                                   const std::string &B) {
  return FrameworkSpec::builtin().mustPrecedeWithinComponent(A, B);
}

bool android::asyncTaskMustPrecede(CallbackKind A, CallbackKind B) {
  return FrameworkSpec::builtin().mustPrecedeKinds(A, B);
}
