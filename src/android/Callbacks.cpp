//===- android/Callbacks.cpp - Android callback model ------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "android/Callbacks.h"

#include <array>
#include <string_view>

using namespace nadroid;
using namespace nadroid::android;
using ir::ClassKind;

const char *android::callbackKindName(CallbackKind Kind) {
  switch (Kind) {
  case CallbackKind::None:
    return "none";
  case CallbackKind::Lifecycle:
    return "lifecycle";
  case CallbackKind::Ui:
    return "ui";
  case CallbackKind::SystemEvent:
    return "system";
  case CallbackKind::ServiceConnect:
    return "onServiceConnected";
  case CallbackKind::ServiceDisconn:
    return "onServiceDisconnected";
  case CallbackKind::Receive:
    return "onReceive";
  case CallbackKind::HandleMessage:
    return "handleMessage";
  case CallbackKind::RunnableRun:
    return "runnable-run";
  case CallbackKind::ThreadRun:
    return "thread-run";
  case CallbackKind::AsyncPre:
    return "onPreExecute";
  case CallbackKind::AsyncBackground:
    return "doInBackground";
  case CallbackKind::AsyncProgress:
    return "onProgressUpdate";
  case CallbackKind::AsyncPost:
    return "onPostExecute";
  }
  return "none";
}

/// Lifecycle callback names per component kind. The lists follow the
/// Android framework (and the FlowDroid table nAdroid consumed).
static bool isActivityLifecycle(std::string_view Name) {
  static constexpr std::array<std::string_view, 7> Names = {
      "onCreate", "onStart",   "onResume", "onPause",
      "onStop",   "onRestart", "onDestroy"};
  for (std::string_view N : Names)
    if (Name == N)
      return true;
  return false;
}

static bool isServiceLifecycle(std::string_view Name) {
  static constexpr std::array<std::string_view, 5> Names = {
      "onCreate", "onStartCommand", "onBind", "onUnbind", "onDestroy"};
  for (std::string_view N : Names)
    if (Name == N)
      return true;
  return false;
}

/// UI-interaction callbacks (registered imperatively via set*Listener or
/// declared in layout XML; either way the runtime posts them externally).
static bool isUiCallback(std::string_view Name) {
  static constexpr std::array<std::string_view, 16> Names = {
      "onClick",
      "onLongClick",
      "onTouch",
      "onKeyDown",
      "onItemClick",
      "onItemSelected",
      "onCreateContextMenu",
      "onContextItemSelected",
      "onCreateOptionsMenu",
      "onOptionsItemSelected",
      "onBackPressed",
      "onActivityResult",
      "onRetainNonConfigurationInstance",
      "onWindowFocusChanged",
      "onScroll",
      "onProgressChanged",
  };
  for (std::string_view N : Names)
    if (Name == N)
      return true;
  return false;
}

/// System/sensor event callbacks.
static bool isSystemCallback(std::string_view Name) {
  static constexpr std::array<std::string_view, 6> Names = {
      "onLocationChanged",      "onSensorChanged", "onStatusChanged",
      "onConfigurationChanged", "onLowMemory",     "onTextChanged",
  };
  for (std::string_view N : Names)
    if (Name == N)
      return true;
  return false;
}

CallbackKind android::classifyCallback(ClassKind Kind,
                                       const std::string &Name) {
  switch (Kind) {
  case ClassKind::Activity:
    if (isActivityLifecycle(Name))
      return CallbackKind::Lifecycle;
    if (isUiCallback(Name))
      return CallbackKind::Ui;
    if (isSystemCallback(Name))
      return CallbackKind::SystemEvent;
    return CallbackKind::None;
  case ClassKind::Service:
    if (isServiceLifecycle(Name))
      return CallbackKind::Lifecycle;
    return CallbackKind::None;
  case ClassKind::Receiver:
    if (Name == "onReceive")
      return CallbackKind::Receive;
    return CallbackKind::None;
  case ClassKind::Handler:
  case ClassKind::BackgroundHandler:
    if (Name == "handleMessage")
      return CallbackKind::HandleMessage;
    return CallbackKind::None;
  case ClassKind::AsyncTask:
    if (Name == "onPreExecute")
      return CallbackKind::AsyncPre;
    if (Name == "doInBackground")
      return CallbackKind::AsyncBackground;
    if (Name == "onProgressUpdate")
      return CallbackKind::AsyncProgress;
    if (Name == "onPostExecute")
      return CallbackKind::AsyncPost;
    return CallbackKind::None;
  case ClassKind::Runnable:
    if (Name == "run")
      return CallbackKind::RunnableRun;
    return CallbackKind::None;
  case ClassKind::ThreadClass:
    if (Name == "run")
      return CallbackKind::ThreadRun;
    return CallbackKind::None;
  case ClassKind::ServiceConnection:
    if (Name == "onServiceConnected")
      return CallbackKind::ServiceConnect;
    if (Name == "onServiceDisconnected")
      return CallbackKind::ServiceDisconn;
    return CallbackKind::None;
  case ClassKind::Listener:
    if (isUiCallback(Name))
      return CallbackKind::Ui;
    if (isSystemCallback(Name))
      return CallbackKind::SystemEvent;
    return CallbackKind::None;
  case ClassKind::Fragment:
    // nAdroid's modeling does not support Fragment (§8.1); its callbacks
    // are invisible to threadification. The DEvA baseline still analyzes
    // the class body.
    return CallbackKind::None;
  case ClassKind::Plain:
    return CallbackKind::None;
  }
  return CallbackKind::None;
}

bool android::isEntryCallbackKind(CallbackKind Kind) {
  switch (Kind) {
  case CallbackKind::Lifecycle:
  case CallbackKind::Ui:
  case CallbackKind::SystemEvent:
  case CallbackKind::Receive: // manifest-declared receivers only; the
                              // threadifier decides based on registration
    return true;
  default:
    return false;
  }
}

bool android::isPostedCallbackKind(CallbackKind Kind) {
  switch (Kind) {
  case CallbackKind::ServiceConnect:
  case CallbackKind::ServiceDisconn:
  case CallbackKind::Receive:
  case CallbackKind::HandleMessage:
  case CallbackKind::RunnableRun:
  case CallbackKind::AsyncPre:
  case CallbackKind::AsyncProgress:
  case CallbackKind::AsyncPost:
    return true;
  default:
    return false;
  }
}

bool android::runsOnLooper(CallbackKind Kind) {
  switch (Kind) {
  case CallbackKind::None:
  case CallbackKind::ThreadRun:
  case CallbackKind::AsyncBackground:
    return false;
  default:
    return true;
  }
}

bool android::lifecycleMustPrecede(const std::string &A,
                                   const std::string &B) {
  if (A == B)
    return false;
  // onCreate precedes every other callback of the component; every
  // callback precedes onDestroy. Nothing else is statically sound (the
  // back edge from onPause to onResume makes the rest cyclic).
  if (A == "onCreate" && B != "onCreate")
    return true;
  if (B == "onDestroy" && A != "onDestroy")
    return true;
  return false;
}

bool android::asyncTaskMustPrecede(CallbackKind A, CallbackKind B) {
  auto Rank = [](CallbackKind K) -> int {
    switch (K) {
    case CallbackKind::AsyncPre:
      return 0;
    case CallbackKind::AsyncBackground:
    case CallbackKind::AsyncProgress:
      return 1;
    case CallbackKind::AsyncPost:
      return 2;
    default:
      return -1;
    }
  };
  int RA = Rank(A), RB = Rank(B);
  if (RA < 0 || RB < 0)
    return false;
  return RA < RB;
}
