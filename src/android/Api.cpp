//===- android/Api.cpp - Android framework API classification ----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "android/Api.h"

#include "ir/LocalInfo.h"

using namespace nadroid;
using namespace nadroid::android;
using namespace nadroid::ir;

const char *android::apiKindName(ApiKind Kind) {
  switch (Kind) {
  case ApiKind::None:
    return "none";
  case ApiKind::BindService:
    return "bindService";
  case ApiKind::UnbindService:
    return "unbindService";
  case ApiKind::RegisterReceiver:
    return "registerReceiver";
  case ApiKind::UnregisterReceiver:
    return "unregisterReceiver";
  case ApiKind::SetListener:
    return "setListener";
  case ApiKind::HandlerPost:
    return "post";
  case ApiKind::HandlerSend:
    return "sendMessage";
  case ApiKind::RemoveCallbacks:
    return "removeCallbacksAndMessages";
  case ApiKind::RunOnUiThread:
    return "runOnUiThread";
  case ApiKind::AsyncExecute:
    return "execute";
  case ApiKind::ThreadStart:
    return "start";
  case ApiKind::PublishProgress:
    return "publishProgress";
  case ApiKind::Finish:
    return "finish";
  }
  return "none";
}

bool android::isCancellationApi(ApiKind Kind) {
  switch (Kind) {
  case ApiKind::Finish:
  case ApiKind::UnbindService:
  case ApiKind::UnregisterReceiver:
  case ApiKind::RemoveCallbacks:
    return true;
  default:
    return false;
  }
}

ApiIndex::ApiIndex(const Program &P) {
  for (const auto &C : P.classes())
    for (const auto &M : C->methods()) {
      LocalTypeInference Types(*M);
      forEachStmt(*M, [&](const Stmt &S) {
        if (const auto *Call = dyn_cast<CallStmt>(&S))
          Cache.emplace(Call, classifyApiCall(*Call, Types));
      });
    }
}

const ApiCallInfo &ApiIndex::lookup(const CallStmt &Call) const {
  auto It = Cache.find(&Call);
  return It == Cache.end() ? NoneInfo : It->second;
}

ApiCallInfo android::classifyApiCall(const CallStmt &Call) {
  return classifyApiCall(Call, LocalTypeInference(*Call.parentMethod()));
}

ApiCallInfo android::classifyApiCall(const CallStmt &Call,
                                     const LocalTypeInference &Types) {
  const std::string &Name = Call.callee();
  ApiCallInfo Info;

  auto ResolveArg0 = [&]() -> Clazz * {
    if (Call.args().empty())
      return nullptr;
    return Types.query(Call.args()[0]).uniqueClass();
  };
  auto ArgTarget = [&](ApiKind Kind, ClassKind Expected) {
    Clazz *Target = ResolveArg0();
    if (!Target || Target->kind() != Expected)
      return; // unresolved → ordinary call
    Info.Kind = Kind;
    Info.Target = Target;
  };
  auto RecvTarget = [&](ApiKind Kind, ClassKind Expected) {
    Clazz *Target = Types.query(Call.recv()).uniqueClass();
    if (!Target || Target->kind() != Expected)
      return;
    Info.Kind = Kind;
    Info.Target = Target;
  };

  if (Name == "bindService") {
    ArgTarget(ApiKind::BindService, ClassKind::ServiceConnection);
  } else if (Name == "registerReceiver") {
    ArgTarget(ApiKind::RegisterReceiver, ClassKind::Receiver);
  } else if (Name == "setOnClickListener" || Name == "setOnLongClickListener" ||
             Name == "setOnTouchListener" || Name == "setOnItemClickListener" ||
             Name == "requestLocationUpdates" || Name == "registerListener") {
    ArgTarget(ApiKind::SetListener, ClassKind::Listener);
  } else if (Name == "post" || Name == "postDelayed") {
    // Handler.post / View.post: accepted whenever the argument is a
    // Runnable — the receiver may be an unresolved framework View. The
    // receiver class, when known, decides which looper runs the callback.
    ArgTarget(ApiKind::HandlerPost, ClassKind::Runnable);
    if (Info.isApi())
      Info.Via = Types.query(Call.recv()).uniqueClass();
  } else if (Name == "runOnUiThread") {
    ArgTarget(ApiKind::RunOnUiThread, ClassKind::Runnable);
  } else if (Name == "sendMessage" || Name == "sendEmptyMessage" ||
             Name == "sendMessageDelayed") {
    RecvTarget(ApiKind::HandlerSend, ClassKind::Handler);
    if (!Info.isApi())
      RecvTarget(ApiKind::HandlerSend, ClassKind::BackgroundHandler);
  } else if (Name == "removeCallbacksAndMessages") {
    RecvTarget(ApiKind::RemoveCallbacks, ClassKind::Handler);
    if (!Info.isApi())
      RecvTarget(ApiKind::RemoveCallbacks, ClassKind::BackgroundHandler);
  } else if (Name == "execute") {
    RecvTarget(ApiKind::AsyncExecute, ClassKind::AsyncTask);
  } else if (Name == "start") {
    RecvTarget(ApiKind::ThreadStart, ClassKind::ThreadClass);
  } else if (Name == "publishProgress") {
    RecvTarget(ApiKind::PublishProgress, ClassKind::AsyncTask);
  } else if (Name == "finish") {
    RecvTarget(ApiKind::Finish, ClassKind::Activity);
  } else if (Name == "unbindService") {
    Info.Kind = ApiKind::UnbindService;
    Info.Target = ResolveArg0(); // may stay null: "all connections"
    if (Info.Target && Info.Target->kind() != ClassKind::ServiceConnection)
      Info.Target = nullptr;
  } else if (Name == "unregisterReceiver") {
    Info.Kind = ApiKind::UnregisterReceiver;
    Info.Target = ResolveArg0();
    if (Info.Target && Info.Target->kind() != ClassKind::Receiver)
      Info.Target = nullptr;
  }
  return Info;
}
