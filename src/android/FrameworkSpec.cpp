//===- android/FrameworkSpec.cpp - Declarative framework spec ----------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "android/FrameworkSpec.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace nadroid;
using namespace nadroid::android;
using ir::ClassKind;

//===----------------------------------------------------------------------===//
// Builtin spec text
//===----------------------------------------------------------------------===//

/// The framework surface the paper models (§4, §6). This is the single
/// source of truth: Callbacks.cpp's free functions and both refuter tiers
/// read the parsed form. Kind tokens follow callbackKindName; class-kind
/// tokens follow ir::classKindName.
static const char BuiltinSpecText[] = R"spec(# nAdroid built-in Android framework spec
spec-version 1

# --- callback kinds and their traits ------------------------------------
kind lifecycle entry looper
kind ui entry looper needs-resumed
kind system entry looper
# Receivers are entry when manifest-declared, posted when registered
# imperatively; the threadifier decides per registration site.
kind onReceive entry posted looper
kind onServiceConnected posted looper
kind onServiceDisconnected posted looper
kind handleMessage posted looper one-per-post
kind runnable-run posted looper one-per-post
kind thread-run
kind onPreExecute posted looper once-only
kind doInBackground
kind onProgressUpdate posted looper
kind onPostExecute posted looper once-only

# --- callback registration table (the FlowDroid listener list) ----------
callback Activity lifecycle onCreate onStart onResume onPause onStop onRestart onDestroy
callback Service lifecycle onCreate onStartCommand onBind onUnbind onDestroy
callback Activity,Listener ui onClick onLongClick onTouch onKeyDown onItemClick onItemSelected onCreateContextMenu onContextItemSelected onCreateOptionsMenu onOptionsItemSelected onBackPressed onActivityResult onRetainNonConfigurationInstance onWindowFocusChanged onScroll onProgressChanged
callback Activity,Listener system onLocationChanged onSensorChanged onStatusChanged onConfigurationChanged onLowMemory onTextChanged
callback Receiver onReceive onReceive
callback Handler,BackgroundHandler handleMessage handleMessage
callback AsyncTask onPreExecute onPreExecute
callback AsyncTask doInBackground doInBackground
callback AsyncTask onProgressUpdate onProgressUpdate
callback AsyncTask onPostExecute onPostExecute
callback Runnable runnable-run run
callback Thread thread-run run
callback ServiceConnection onServiceConnected onServiceConnected
callback ServiceConnection onServiceDisconnected onServiceDisconnected

# --- component phase machine (the refuters' lifecycle automaton) --------
# resumed-pending = resumed with a framework onResume still owed (right
# after launch/onCreate); onResume discharges it, onPause clears it.
phase onCreate from not-created to resumed sets-pending
phase onPause from resumed to paused clears-pending
phase onResume from paused,resumed-pending to resumed clears-pending
phase onDestroy from resumed,paused to destroyed

# --- sound must-order edges (§6.1.1) ------------------------------------
order onCreate before-all
order onDestroy after-all
order onPreExecute before doInBackground
order onPreExecute before onProgressUpdate
order doInBackground before onPostExecute
order onProgressUpdate before onPostExecute

# --- cancellation (kill) rules (§6.2.1) ---------------------------------
kill finish scope entry-of-component except onDestroy
kill unbindService covers onServiceConnected,onServiceDisconnected scope target-or-component
kill unregisterReceiver covers onReceive scope target-or-component posted-only
kill removeCallbacksAndMessages covers handleMessage scope target-parent

# --- revive windows (the RHB idiom, §6.2.1) -----------------------------
revive-window onPause onResume ui

# --- object-protocol typestate machines (Typestate pass) ----------------
# A receiver registered by the component must be unregistered before the
# component is destroyed, or it leaks and keeps firing into freed state.
protocol receiver-leak states unregistered,registered initial unregistered
protocol receiver-leak on registerReceiver from any to registered
protocol receiver-leak on unregisterReceiver from any to unregistered
protocol receiver-leak error-at onDestroy in registered receiver still registered at destroy

# Unregistering a receiver that was never registered throws
# IllegalArgumentException at runtime. Three states so that a second
# activation after a balanced register/unregister pair stays legal.
protocol unbalanced-unregister states fresh,registered,done initial fresh
protocol unbalanced-unregister on registerReceiver from any to registered
protocol unbalanced-unregister on unregisterReceiver from registered,done to done
protocol unbalanced-unregister error-call unregisterReceiver in fresh unregisterReceiver without a prior registerReceiver

# A bound service connection must be unbound before destroy (leaked
# ServiceConnection, the bind twin of receiver-leak).
protocol service-bind-leak states unbound,bound initial unbound
protocol service-bind-leak on bindService from any to bound
protocol service-bind-leak on unbindService from any to unbound
protocol service-bind-leak error-at onDestroy in bound service connection still bound at destroy

# Unbinding a never-bound connection throws IllegalArgumentException.
protocol unbalanced-unbind states fresh,bound,done initial fresh
protocol unbalanced-unbind on bindService from any to bound
protocol unbalanced-unbind on unbindService from bound,done to done
protocol unbalanced-unbind error-call unbindService in fresh unbindService without a prior bindService

# Messages posted to a handler must be drained before destroy, or the
# looper runs them against the torn-down component. runOnUiThread is
# deliberately excluded: it cannot be cancelled, so flagging it is noise.
protocol handler-post-leak states idle,pending initial idle
protocol handler-post-leak on post from any to pending
protocol handler-post-leak on sendMessage from any to pending
protocol handler-post-leak on removeCallbacksAndMessages from any to idle
protocol handler-post-leak error-at onDestroy in pending pending handler messages at destroy
)spec";

const char *FrameworkSpec::builtinText() { return BuiltinSpecText; }

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::string> splitWs(const std::string &Line) {
  std::vector<std::string> Toks;
  std::istringstream IS(Line);
  std::string T;
  while (IS >> T)
    Toks.push_back(T);
  return Toks;
}

std::vector<std::string> splitComma(const std::string &S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

bool kindFromToken(const std::string &Tok, CallbackKind &Out) {
  for (int K = 0; K < 14; ++K) {
    if (Tok == callbackKindName(static_cast<CallbackKind>(K)) &&
        static_cast<CallbackKind>(K) != CallbackKind::None) {
      Out = static_cast<CallbackKind>(K);
      return true;
    }
  }
  return false;
}

bool phaseFromToken(const std::string &Tok, FrameworkSpec::Phase &Out) {
  if (Tok == "not-created")
    Out = FrameworkSpec::Phase::NotCreated;
  else if (Tok == "resumed")
    Out = FrameworkSpec::Phase::Resumed;
  else if (Tok == "paused")
    Out = FrameworkSpec::Phase::Paused;
  else if (Tok == "destroyed")
    Out = FrameworkSpec::Phase::Destroyed;
  else
    return false;
  return true;
}

/// The framework APIs a protocol transition or error-call rule may name.
/// A superset of the cancellation table: protocols watch the registering
/// side too.
bool protocolApiFromToken(const std::string &Tok, ApiKind &Out) {
  static const std::pair<const char *, ApiKind> Table[] = {
      {"bindService", ApiKind::BindService},
      {"unbindService", ApiKind::UnbindService},
      {"registerReceiver", ApiKind::RegisterReceiver},
      {"unregisterReceiver", ApiKind::UnregisterReceiver},
      {"setListener", ApiKind::SetListener},
      {"post", ApiKind::HandlerPost},
      {"sendMessage", ApiKind::HandlerSend},
      {"removeCallbacksAndMessages", ApiKind::RemoveCallbacks},
      {"runOnUiThread", ApiKind::RunOnUiThread},
      {"execute", ApiKind::AsyncExecute},
      {"start", ApiKind::ThreadStart},
      {"publishProgress", ApiKind::PublishProgress},
      {"finish", ApiKind::Finish},
  };
  for (const auto &[N, K] : Table)
    if (Tok == N) {
      Out = K;
      return true;
    }
  return false;
}

/// The cancellation APIs a kill rule may name.
bool cancelApiFromToken(const std::string &Tok, ApiKind &Out) {
  static const std::pair<const char *, ApiKind> Table[] = {
      {"finish", ApiKind::Finish},
      {"unbindService", ApiKind::UnbindService},
      {"unregisterReceiver", ApiKind::UnregisterReceiver},
      {"removeCallbacksAndMessages", ApiKind::RemoveCallbacks},
  };
  for (const auto &[N, K] : Table)
    if (Tok == N) {
      Out = K;
      return true;
    }
  return false;
}

} // namespace

namespace nadroid::android {

/// Friend of FrameworkSpec: fills the private tables during parseText.
struct SpecParser {
  FrameworkSpec &S;
  std::vector<std::string> &Diags;
  int Line = 0;

  void err(const std::string &Msg) {
    Diags.push_back("spec line " + std::to_string(Line) + ": " + Msg);
  }

  void parseLine(const std::vector<std::string> &T) {
    const std::string &D = T[0];
    if (D == "spec-version")
      parseVersion(T);
    else if (D == "kind")
      parseKind(T);
    else if (D == "callback")
      parseCallback(T);
    else if (D == "phase")
      parsePhase(T);
    else if (D == "order")
      parseOrder(T);
    else if (D == "kill")
      parseKill(T);
    else if (D == "revive-window")
      parseRevive(T);
    else if (D == "protocol")
      parseProtocol(T);
    else
      err("unknown directive '" + D + "'");
  }

  void parseVersion(const std::vector<std::string> &T) {
    if (T.size() != 2) {
      err("expected: spec-version <number>");
      return;
    }
    char *End = nullptr;
    long V = std::strtol(T[1].c_str(), &End, 10);
    if (*End != '\0' || V <= 0) {
      err("bad spec version '" + T[1] + "'");
      return;
    }
    S.Version = static_cast<unsigned>(V);
    S.SawVersion = true;
  }

  void parseKind(const std::vector<std::string> &T) {
    if (T.size() < 2) {
      err("expected: kind <cb-kind> [traits...]");
      return;
    }
    CallbackKind K;
    if (!kindFromToken(T[1], K)) {
      err("unknown callback kind '" + T[1] + "'");
      return;
    }
    FrameworkSpec::KindTraits &Tr = S.Traits[static_cast<int>(K)];
    if (Tr.Declared) {
      err("duplicate kind declaration for '" + T[1] + "'");
      return;
    }
    Tr.Declared = true;
    for (size_t I = 2; I < T.size(); ++I) {
      if (T[I] == "entry")
        Tr.Entry = true;
      else if (T[I] == "posted")
        Tr.Posted = true;
      else if (T[I] == "looper")
        Tr.Looper = true;
      else if (T[I] == "needs-resumed")
        Tr.NeedsResumed = true;
      else if (T[I] == "once-only")
        Tr.OnceOnly = true;
      else if (T[I] == "one-per-post")
        Tr.OnePerPost = true;
      else
        err("unknown kind trait '" + T[I] + "'");
    }
  }

  void parseCallback(const std::vector<std::string> &T) {
    if (T.size() < 4) {
      err("expected: callback <class-kinds> <cb-kind> <name>...");
      return;
    }
    std::vector<ClassKind> Classes;
    for (const std::string &C : splitComma(T[1])) {
      ClassKind CK;
      if (!ir::classKindFromName(C, CK)) {
        err("unknown class kind '" + C + "'");
        return;
      }
      Classes.push_back(CK);
    }
    CallbackKind K;
    if (!kindFromToken(T[2], K)) {
      err("unknown callback kind '" + T[2] + "'");
      return;
    }
    for (size_t I = 3; I < T.size(); ++I) {
      for (ClassKind CK : Classes) {
        auto Key = std::make_pair(static_cast<int>(CK), T[I]);
        auto [It, Inserted] = S.Registry.emplace(Key, K);
        if (!Inserted)
          err("duplicate registration of '" + T[I] + "' on class kind '" +
              ir::classKindName(CK) + "'");
        (void)It;
      }
      S.Names.insert(T[I]);
    }
  }

  void parsePhase(const std::vector<std::string> &T) {
    // phase <cb> from <list> to <phase> [sets-pending] [clears-pending]
    if (T.size() < 6 || T[2] != "from" || T[4] != "to") {
      err("expected: phase <callback> from <phases> to <phase> [flags]");
      return;
    }
    FrameworkSpec::PhaseRule R;
    R.Callback = T[1];
    R.Line = Line;
    for (const std::string &P : splitComma(T[3])) {
      FrameworkSpec::Phase Ph;
      if (P == "resumed-pending") {
        R.FromResumedPending = true;
      } else if (phaseFromToken(P, Ph)) {
        R.FromMask |= uint8_t(1u << static_cast<unsigned>(Ph));
      } else {
        err("unknown phase '" + P + "'");
        return;
      }
    }
    if (!phaseFromToken(T[5], R.To)) {
      err("unknown phase '" + T[5] + "'");
      return;
    }
    for (size_t I = 6; I < T.size(); ++I) {
      if (T[I] == "sets-pending")
        R.SetsPending = true;
      else if (T[I] == "clears-pending")
        R.ClearsPending = true;
      else
        err("unknown phase flag '" + T[I] + "'");
    }
    S.Phases.push_back(std::move(R));
  }

  void parseOrder(const std::vector<std::string> &T) {
    if (T.size() == 3 && (T[2] == "before-all" || T[2] == "after-all")) {
      (T[2] == "before-all" ? S.BeforeAll : S.AfterAll).insert(T[1]);
      return;
    }
    if (T.size() == 4 && T[2] == "before") {
      CallbackKind A, B;
      if (!kindFromToken(T[1], A)) {
        err("unknown callback kind '" + T[1] + "'");
        return;
      }
      if (!kindFromToken(T[3], B)) {
        err("unknown callback kind '" + T[3] + "'");
        return;
      }
      S.OrderEdges.emplace_back(A, B);
      return;
    }
    err("expected: order <callback> before-all|after-all, or "
        "order <cb-kind> before <cb-kind>");
  }

  void parseKill(const std::vector<std::string> &T) {
    if (T.size() < 2) {
      err("expected: kill <api> [covers <kinds>] scope <scope> [flags]");
      return;
    }
    FrameworkSpec::KillRule R;
    R.ApiToken = T[1];
    R.Line = Line;
    if (!cancelApiFromToken(T[1], R.Api))
      err("'" + T[1] + "' is not a cancellation API");
    bool SawScope = false;
    size_t I = 2;
    while (I < T.size()) {
      if (T[I] == "covers" && I + 1 < T.size()) {
        for (const std::string &K : splitComma(T[I + 1])) {
          R.CoverTokens.push_back(K);
          CallbackKind CK;
          if (kindFromToken(K, CK))
            R.Covers.push_back(CK);
          else
            err("unknown callback kind '" + K + "' in covers list");
        }
        I += 2;
      } else if (T[I] == "scope" && I + 1 < T.size()) {
        SawScope = true;
        if (T[I + 1] == "entry-of-component")
          R.Scope = FrameworkSpec::KillScope::EntryOfComponent;
        else if (T[I + 1] == "target-or-component")
          R.Scope = FrameworkSpec::KillScope::TargetOrComponent;
        else if (T[I + 1] == "target-parent")
          R.Scope = FrameworkSpec::KillScope::TargetParent;
        else
          err("unknown kill scope '" + T[I + 1] + "'");
        I += 2;
      } else if (T[I] == "except" && I + 1 < T.size()) {
        for (const std::string &N : splitComma(T[I + 1]))
          R.Except.push_back(N);
        I += 2;
      } else if (T[I] == "posted-only") {
        R.PostedOnly = true;
        I += 1;
      } else {
        err("unexpected token '" + T[I] + "' in kill rule");
        return;
      }
    }
    if (!SawScope)
      err("kill rule for '" + T[1] + "' is missing a scope");
    S.Kills.push_back(std::move(R));
  }

  void parseRevive(const std::vector<std::string> &T) {
    if (T.size() != 4) {
      err("expected: revive-window <free-cb> <revive-cb> <use-cb-kind>");
      return;
    }
    FrameworkSpec::ReviveWindow W;
    W.FreeCallback = T[1];
    W.ReviveCallback = T[2];
    W.UseKindToken = T[3];
    W.Line = Line;
    if (!kindFromToken(T[3], W.UseKind))
      err("unknown callback kind '" + T[3] + "'");
    S.Revives.push_back(std::move(W));
  }

  FrameworkSpec::Protocol *findProtocol(const std::string &Name) {
    for (FrameworkSpec::Protocol &P : S.Protocols)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }

  /// Resolves a comma-separated state list (or `any`) against \p Proto's
  /// declared states into a bitmask; false + diagnostic on unknowns.
  bool parseStateMask(const FrameworkSpec::Protocol &Proto,
                      const std::string &Tok, uint8_t &Out) {
    if (Tok == "any") {
      Out = uint8_t((1u << Proto.States.size()) - 1);
      return true;
    }
    Out = 0;
    for (const std::string &St : splitComma(Tok)) {
      size_t I = Proto.stateIndex(St);
      if (I == Proto.States.size()) {
        err("protocol '" + Proto.Name + "' has no state '" + St + "'");
        return false;
      }
      Out |= uint8_t(1u << I);
    }
    if (Out == 0) {
      err("empty state list in protocol '" + Proto.Name + "'");
      return false;
    }
    return true;
  }

  void parseProtocol(const std::vector<std::string> &T) {
    if (T.size() < 3) {
      err("expected: protocol <name> "
          "states|on|on-callback|error-call|error-at ...");
      return;
    }
    const std::string &Name = T[1];
    const std::string &Sub = T[2];
    if (Sub == "states") {
      if (T.size() != 6 || T[4] != "initial") {
        err("expected: protocol <name> states <states> initial <state>");
        return;
      }
      if (findProtocol(Name)) {
        err("duplicate protocol '" + Name + "'");
        return;
      }
      FrameworkSpec::Protocol P;
      P.Name = Name;
      P.Line = Line;
      for (const std::string &St : splitComma(T[3])) {
        if (P.stateIndex(St) != P.States.size()) {
          err("duplicate state '" + St + "' in protocol '" + Name + "'");
          return;
        }
        P.States.push_back(St);
      }
      if (P.States.empty() || P.States.size() > 8) {
        err("protocol '" + Name + "' must declare between 1 and 8 states");
        return;
      }
      size_t Init = P.stateIndex(T[5]);
      if (Init == P.States.size()) {
        err("protocol '" + Name + "' has no state '" + T[5] + "'");
        return;
      }
      P.Initial = static_cast<unsigned>(Init);
      S.Protocols.push_back(std::move(P));
      return;
    }
    FrameworkSpec::Protocol *P = findProtocol(Name);
    if (!P) {
      err("protocol '" + Name +
          "' has no states declaration (states must come first)");
      return;
    }
    if (Sub == "on" || Sub == "on-callback") {
      if (T.size() != 8 || T[4] != "from" || T[6] != "to") {
        err("expected: protocol <name> " + Sub +
            " <target> from <states>|any to <state>");
        return;
      }
      uint8_t FromMask = 0;
      if (!parseStateMask(*P, T[5], FromMask))
        return;
      size_t To = P->stateIndex(T[7]);
      if (To == P->States.size()) {
        err("protocol '" + Name + "' has no state '" + T[7] + "'");
        return;
      }
      if (Sub == "on") {
        FrameworkSpec::Protocol::Transition Tr;
        Tr.ApiToken = T[3];
        Tr.FromMask = FromMask;
        Tr.To = static_cast<uint8_t>(To);
        Tr.Line = Line;
        if (!protocolApiFromToken(T[3], Tr.Api))
          err("'" + T[3] + "' is not a framework API token");
        P->Transitions.push_back(std::move(Tr));
      } else {
        FrameworkSpec::Protocol::CallbackTransition Tr;
        Tr.Callback = T[3];
        Tr.FromMask = FromMask;
        Tr.To = static_cast<uint8_t>(To);
        Tr.Line = Line;
        P->CallbackTransitions.push_back(std::move(Tr));
      }
      return;
    }
    if (Sub == "error-call" || Sub == "error-at") {
      if (T.size() < 7 || T[4] != "in") {
        err("expected: protocol <name> " + Sub +
            " <target> in <states> <message...>");
        return;
      }
      FrameworkSpec::Protocol::ErrorRule R;
      R.AtCallback = Sub == "error-at";
      R.Line = Line;
      if (R.AtCallback) {
        R.Callback = T[3];
      } else {
        R.ApiToken = T[3];
        if (!protocolApiFromToken(T[3], R.Api))
          err("'" + T[3] + "' is not a framework API token");
      }
      if (!parseStateMask(*P, T[5], R.InMask))
        return;
      for (size_t I = 6; I < T.size(); ++I) {
        if (I > 6)
          R.Message += ' ';
        R.Message += T[I];
      }
      P->Errors.push_back(std::move(R));
      return;
    }
    err("unknown protocol subdirective '" + Sub + "'");
  }

  void finishClosure() {
    // Transitive closure of the kind-level order edges (Floyd–Warshall
    // over the 14 kinds). Cycles surface in validate().
    for (const auto &[A, B] : S.OrderEdges)
      S.OrderClosure[static_cast<int>(A)][static_cast<int>(B)] = true;
    for (int K = 0; K < 14; ++K)
      for (int I = 0; I < 14; ++I)
        for (int J = 0; J < 14; ++J)
          if (S.OrderClosure[I][K] && S.OrderClosure[K][J])
            S.OrderClosure[I][J] = true;
  }
};

} // namespace nadroid::android

bool FrameworkSpec::parseText(const std::string &Text, FrameworkSpec &Out,
                              std::vector<std::string> &Diags) {
  Out = FrameworkSpec();
  SpecParser P{Out, Diags};
  size_t Before = Diags.size();
  std::istringstream IS(Text);
  std::string Line;
  while (std::getline(IS, Line)) {
    ++P.Line;
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.erase(Hash);
    std::vector<std::string> Toks = splitWs(Line);
    if (Toks.empty())
      continue;
    P.parseLine(Toks);
  }
  P.finishClosure();
  return Diags.size() == Before;
}

bool FrameworkSpec::loadFile(const std::string &Path, FrameworkSpec &Out,
                             std::vector<std::string> &Diags) {
  std::ifstream In(Path);
  if (!In) {
    Diags.push_back("cannot read spec file '" + Path + "'");
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parseText(SS.str(), Out, Diags);
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

std::vector<std::string> FrameworkSpec::validate() const {
  std::vector<std::string> Diags;
  auto Err = [&](int Line, const std::string &Msg) {
    if (Line > 0)
      Diags.push_back("spec line " + std::to_string(Line) + ": " + Msg);
    else
      Diags.push_back("spec: " + Msg);
  };

  if (!SawVersion)
    Err(0, "missing spec-version directive");
  else if (Version != 1)
    Err(0, "unsupported spec-version " + std::to_string(Version));

  // Every kind referenced by a registration must be declared.
  for (const auto &[Key, K] : Registry)
    if (!traits(K).Declared)
      Err(0, std::string("callback '") + Key.second +
                 "' references undeclared kind '" + callbackKindName(K) +
                 "'");

  // Phase rules: known callbacks, one rule per callback.
  std::set<std::string> PhaseSeen;
  for (const PhaseRule &R : Phases) {
    if (!Names.count(R.Callback))
      Err(R.Line, "phase rule for unknown callback '" + R.Callback + "'");
    if (!PhaseSeen.insert(R.Callback).second)
      Err(R.Line, "conflicting phase rules for '" + R.Callback + "'");
    if (R.FromMask == 0 && !R.FromResumedPending)
      Err(R.Line, "phase rule for '" + R.Callback + "' admits no phase");
  }

  // Name-level order: known callbacks, no callback both first and last.
  for (const std::string &N : BeforeAll)
    if (!Names.count(N))
      Err(0, "order before-all names unknown callback '" + N + "'");
  for (const std::string &N : AfterAll) {
    if (!Names.count(N))
      Err(0, "order after-all names unknown callback '" + N + "'");
    if (BeforeAll.count(N))
      Err(0, "cyclic must-order: '" + N +
                 "' is declared both before-all and after-all");
  }

  // Kind-level order: the closure must be irreflexive (acyclic edges).
  for (int K = 0; K < 14; ++K)
    if (OrderClosure[K][K])
      Err(0, std::string("cyclic must-order edges through kind '") +
                 callbackKindName(static_cast<CallbackKind>(K)) + "'");

  // Kill rules: one per API; covered kinds must have registered callbacks
  // (a dangling kill target covers nothing and is certainly a typo).
  std::set<int> KillSeen;
  for (const KillRule &R : Kills) {
    if (R.Api != ApiKind::None && !KillSeen.insert(int(R.Api)).second)
      Err(R.Line, "duplicate kill rule for '" + R.ApiToken + "'");
    for (size_t I = 0; I < R.Covers.size(); ++I) {
      bool Registered = false;
      for (const auto &[Key, K] : Registry)
        if (K == R.Covers[I])
          Registered = true;
      if (!Registered)
        Err(R.Line, "kill rule for '" + R.ApiToken +
                        "' covers kind '" + R.CoverTokens[I] +
                        "' with no registered callback (dangling target)");
    }
    for (const std::string &N : R.Except)
      if (!Names.count(N))
        Err(R.Line, "kill rule for '" + R.ApiToken +
                        "' excepts unknown callback '" + N + "'");
  }

  // Protocols: callback targets must be registered callbacks, and a
  // protocol with no error rule can never fire (certainly a typo).
  for (const Protocol &P : Protocols) {
    for (const Protocol::CallbackTransition &T : P.CallbackTransitions)
      if (!Names.count(T.Callback))
        Err(T.Line, "protocol '" + P.Name +
                        "' transitions on unknown callback '" + T.Callback +
                        "'");
    for (const Protocol::ErrorRule &R : P.Errors)
      if (R.AtCallback && !Names.count(R.Callback))
        Err(R.Line, "protocol '" + P.Name +
                        "' error rule at unknown callback '" + R.Callback +
                        "'");
    if (P.Errors.empty())
      Err(P.Line, "protocol '" + P.Name + "' declares no error rule");
  }

  // Revive windows: both callbacks must exist (dangling revive target).
  for (const ReviveWindow &W : Revives) {
    if (!Names.count(W.FreeCallback))
      Err(W.Line, "revive-window frees in unknown callback '" +
                      W.FreeCallback + "' (dangling target)");
    if (!Names.count(W.ReviveCallback))
      Err(W.Line, "revive-window revives in unknown callback '" +
                      W.ReviveCallback + "' (dangling target)");
  }
  return Diags;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

const FrameworkSpec::KindTraits &
FrameworkSpec::traits(CallbackKind K) const {
  return Traits[static_cast<int>(K)];
}

CallbackKind FrameworkSpec::classify(ClassKind K,
                                     const std::string &Name) const {
  auto It = Registry.find({static_cast<int>(K), Name});
  return It == Registry.end() ? CallbackKind::None : It->second;
}

bool FrameworkSpec::mustPrecedeWithinComponent(const std::string &A,
                                               const std::string &B) const {
  if (A == B)
    return false;
  if (BeforeAll.count(A))
    return true;
  if (AfterAll.count(B))
    return true;
  return false;
}

bool FrameworkSpec::mustPrecedeKinds(CallbackKind A, CallbackKind B) const {
  return OrderClosure[static_cast<int>(A)][static_cast<int>(B)];
}

const FrameworkSpec::PhaseRule *
FrameworkSpec::phaseRule(const std::string &Name) const {
  for (const PhaseRule &R : Phases)
    if (R.Callback == Name)
      return &R;
  return nullptr;
}

bool FrameworkSpec::createsComponent(const std::string &Name) const {
  const PhaseRule *R = phaseRule(Name);
  return R && (R->FromMask &
               (1u << static_cast<unsigned>(Phase::NotCreated))) != 0;
}

const FrameworkSpec::KillRule *FrameworkSpec::killRule(ApiKind K) const {
  for (const KillRule &R : Kills)
    if (R.Api == K)
      return &R;
  return nullptr;
}

std::string FrameworkSpec::summary() const {
  unsigned Kinds = 0;
  for (const KindTraits &T : Traits)
    Kinds += T.Declared;
  std::ostringstream OS;
  OS << "spec-version " << Version << ": " << Registry.size()
     << " registrations over " << Names.size() << " callback names, "
     << Kinds << " kinds, " << Phases.size() << " phase rules, "
     << (BeforeAll.size() + AfterAll.size() + OrderEdges.size())
     << " order rules, " << Kills.size() << " kill rules, "
     << Revives.size() << " revive windows, " << Protocols.size()
     << " protocols";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Builtin
//===----------------------------------------------------------------------===//

const FrameworkSpec &FrameworkSpec::builtin() {
  static const FrameworkSpec Spec = [] {
    FrameworkSpec S;
    std::vector<std::string> Diags;
    bool Ok = parseText(BuiltinSpecText, S, Diags);
    if (Ok)
      for (const std::string &D : S.validate())
        Diags.push_back(D);
    if (!Diags.empty()) {
      for (const std::string &D : Diags)
        std::fprintf(stderr, "builtin framework spec: %s\n", D.c_str());
      std::abort(); // programming error: the builtin must always be valid
    }
    return S;
  }();
  return Spec;
}
