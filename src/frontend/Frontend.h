//===- frontend/Frontend.h - AIR parsing entry points -----------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry points: parse AIR source text (or a file) into a
/// Program, run the IR verifier, and hand back diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_FRONTEND_FRONTEND_H
#define NADROID_FRONTEND_FRONTEND_H

#include "ir/Ir.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <string_view>

namespace nadroid::frontend {

/// The result of parsing: the program (always present, possibly partial on
/// error) plus collected diagnostics.
struct ParseResult {
  std::unique_ptr<ir::Program> Prog;
  std::vector<Diagnostic> Diags;
  bool Success = false;
};

/// Parses \p Source (named \p BufferName in diagnostics) and verifies the
/// result. \p AppName names the resulting Program.
ParseResult parseProgramText(std::string_view Source,
                             const std::string &BufferName,
                             const std::string &AppName);

/// Reads and parses \p Path; the app name is the file stem.
ParseResult parseProgramFile(const std::string &Path);

/// The canonical byte form of \p P: the printer's output, which the
/// parser round-trips to a fixpoint (print ∘ parse ∘ print = print).
/// Because canonicalization goes through the parsed program, two files
/// that differ only in formatting, comments or key order have identical
/// canonical bytes — the property the batch result cache keys on, so a
/// reformatted app still hits. The app *name* is deliberately excluded:
/// it is derived from the file name, and a renamed-but-unchanged app
/// must keep its key.
std::string canonicalProgramBytes(const ir::Program &P);

} // namespace nadroid::frontend

#endif // NADROID_FRONTEND_FRONTEND_H
