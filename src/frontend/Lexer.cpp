//===- frontend/Lexer.cpp - AIR tokenizer -----------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/StringUtils.h"

#include <unordered_map>

using namespace nadroid;
using namespace nadroid::frontend;

const char *frontend::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::String:
    return "string literal";
  case TokenKind::KwApp:
    return "'app'";
  case TokenKind::KwManifest:
    return "'manifest'";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwField:
    return "'field'";
  case TokenKind::KwMethod:
    return "'method'";
  case TokenKind::KwExtends:
    return "'extends'";
  case TokenKind::KwOuter:
    return "'outer'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwSynchronized:
    return "'synchronized'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  }
  return "unknown";
}

Lexer::Lexer(std::string_view Buffer, uint32_t FileId, DiagnosticEngine &Diags)
    : Buffer(Buffer), FileId(FileId), Diags(Diags) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Buffer.size() ? Buffer[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Buffer[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Buffer.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Buffer.size() && peek() != '\n')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::make(TokenKind Kind, SourceLoc Loc, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexToken() {
  skipTrivia();
  SourceLoc Loc = here();
  if (Pos >= Buffer.size())
    return make(TokenKind::EndOfFile, Loc);

  char C = advance();
  switch (C) {
  case '{':
    return make(TokenKind::LBrace, Loc);
  case '}':
    return make(TokenKind::RBrace, Loc);
  case '(':
    return make(TokenKind::LParen, Loc);
  case ')':
    return make(TokenKind::RParen, Loc);
  case ';':
    return make(TokenKind::Semi, Loc);
  case ',':
    return make(TokenKind::Comma, Loc);
  case ':':
    return make(TokenKind::Colon, Loc);
  case '.':
    return make(TokenKind::Dot, Loc);
  case '?':
    return make(TokenKind::Question, Loc);
  case '=':
    if (peek() == '=') {
      advance();
      return make(TokenKind::EqualEqual, Loc);
    }
    return make(TokenKind::Equal, Loc);
  case '!':
    if (peek() == '=') {
      advance();
      return make(TokenKind::BangEqual, Loc);
    }
    Diags.error(Loc, "expected '=' after '!'");
    return make(TokenKind::Error, Loc);
  case '"': {
    std::string Text;
    while (Pos < Buffer.size() && peek() != '"' && peek() != '\n')
      Text += advance();
    if (Pos >= Buffer.size() || peek() != '"') {
      Diags.error(Loc, "unterminated string literal");
      return make(TokenKind::Error, Loc, std::move(Text));
    }
    advance(); // closing quote
    return make(TokenKind::String, Loc, std::move(Text));
  }
  default:
    break;
  }

  if (isIdentStart(C)) {
    std::string Text(1, C);
    while (Pos < Buffer.size() && isIdentCont(peek()))
      Text += advance();
    static const std::unordered_map<std::string_view, TokenKind> Keywords = {
        {"app", TokenKind::KwApp},
        {"manifest", TokenKind::KwManifest},
        {"class", TokenKind::KwClass},
        {"field", TokenKind::KwField},
        {"method", TokenKind::KwMethod},
        {"extends", TokenKind::KwExtends},
        {"outer", TokenKind::KwOuter},
        {"new", TokenKind::KwNew},
        {"null", TokenKind::KwNull},
        {"return", TokenKind::KwReturn},
        {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},
        {"synchronized", TokenKind::KwSynchronized},
    };
    auto It = Keywords.find(Text);
    if (It != Keywords.end())
      return make(It->second, Loc);
    return make(TokenKind::Ident, Loc, std::move(Text));
  }

  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  return make(TokenKind::Error, Loc);
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(lexToken());
    if (Tokens.back().is(TokenKind::EndOfFile))
      return Tokens;
  }
}
