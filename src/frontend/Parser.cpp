//===- frontend/Parser.cpp - AIR parser --------------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace nadroid;
using namespace nadroid::frontend;
using namespace nadroid::ir;

//===----------------------------------------------------------------------===//
// Token cursor
//===----------------------------------------------------------------------===//

const Token &Parser::peek(size_t Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // EndOfFile
  return Tokens[Index];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

const Token *Parser::expect(TokenKind Kind, const char *Context) {
  if (check(Kind))
    return &advance();
  error(peek(), std::string("expected ") + tokenKindName(Kind) + " " +
                    Context + ", found " + tokenKindName(peek().Kind));
  return nullptr;
}

void Parser::error(const Token &Tok, std::string Message) {
  Diags.error(Tok.Loc, std::move(Message));
}

void Parser::sync(std::initializer_list<TokenKind> StopKinds) {
  while (!check(TokenKind::EndOfFile)) {
    for (TokenKind Stop : StopKinds) {
      if (check(Stop)) {
        if (Stop == TokenKind::Semi)
          advance();
        return;
      }
    }
    advance();
  }
}

//===----------------------------------------------------------------------===//
// Grammar
//===----------------------------------------------------------------------===//

bool Parser::parseProgram() {
  prescanClasses();
  prescanFields();
  while (!check(TokenKind::EndOfFile))
    parseTopLevel();
  return !Diags.hasErrors();
}

/// Registers every `class Name : Kind` header up front so classes can be
/// referenced before their declaration (the real parse re-checks details).
void Parser::prescanClasses() {
  for (size_t I = 0; I + 3 < Tokens.size(); ++I) {
    if (!Tokens[I].is(TokenKind::KwClass) ||
        !Tokens[I + 1].is(TokenKind::Ident) ||
        !Tokens[I + 2].is(TokenKind::Colon) ||
        !Tokens[I + 3].is(TokenKind::Ident))
      continue;
    const std::string &Name = Tokens[I + 1].Text;
    if (P.findClass(Name))
      continue; // duplicate: reported during the real parse
    ClassKind Kind = ClassKind::Plain;
    classKindFromName(Tokens[I + 3].Text, Kind); // unknown: reported later
    P.addClass(Name, Kind, Tokens[I + 1].Loc);
  }
}

/// Registers every well-formed field declaration up front so that a load
/// through a typed field can resolve members of classes declared later in
/// the file. Runs after prescanClasses so field types resolve forward.
void Parser::prescanFields() {
  Clazz *Cur = nullptr;
  int Depth = 0;
  int ClassDepth = -1;
  for (size_t I = 0; I < Tokens.size(); ++I) {
    const Token &Tok = Tokens[I];
    if (Tok.is(TokenKind::LBrace)) {
      ++Depth;
    } else if (Tok.is(TokenKind::RBrace)) {
      --Depth;
      if (Cur && Depth < ClassDepth)
        Cur = nullptr;
    } else if (Tok.is(TokenKind::KwClass) && I + 1 < Tokens.size() &&
               Tokens[I + 1].is(TokenKind::Ident)) {
      Cur = P.findClass(Tokens[I + 1].Text);
      ClassDepth = Depth + 1;
    } else if (Tok.is(TokenKind::KwField) && Cur && Depth == ClassDepth &&
               I + 1 < Tokens.size() && Tokens[I + 1].is(TokenKind::Ident)) {
      const Token &NameTok = Tokens[I + 1];
      if (Cur->findField(NameTok.Text))
        continue; // duplicate: reported during the real parse
      Field *F = Cur->addField(NameTok.Text, NameTok.Loc);
      if (I + 3 < Tokens.size() && Tokens[I + 2].is(TokenKind::Colon) &&
          Tokens[I + 3].is(TokenKind::Ident))
        F->setDeclaredType(P.findClass(Tokens[I + 3].Text));
    }
  }
}

void Parser::parseTopLevel() {
  if (check(TokenKind::KwApp)) {
    advance();
    if (const Token *Name = expect(TokenKind::String, "after 'app'")) {
      // The program keeps its constructor-given name unless the source
      // names one; Program has no setter, so names must match or the
      // source name wins via a fresh diagnostic-free convention: we accept
      // any name silently (the driver creates the Program with the file's
      // stem and the directive is documentation).
      (void)Name;
    }
    expect(TokenKind::Semi, "after app directive");
    return;
  }
  if (check(TokenKind::KwManifest)) {
    parseManifestDirective();
    return;
  }
  if (check(TokenKind::KwClass)) {
    parseClass();
    return;
  }
  error(peek(), std::string("expected a declaration, found ") +
                    tokenKindName(peek().Kind));
  sync({TokenKind::KwClass, TokenKind::KwManifest, TokenKind::Semi});
}

void Parser::parseManifestDirective() {
  advance(); // 'manifest'
  const Token *Name = expect(TokenKind::Ident, "after 'manifest'");
  expect(TokenKind::Semi, "after manifest directive");
  if (!Name)
    return;
  Clazz *C = P.findClass(Name->Text);
  if (!C) {
    error(*Name, "manifest references unknown class '" + Name->Text + "'");
    return;
  }
  P.addManifestComponent(C);
}

void Parser::parseClass() {
  advance(); // 'class'
  const Token *Name = expect(TokenKind::Ident, "after 'class'");
  if (!Name) {
    sync({TokenKind::KwClass});
    return;
  }
  Clazz *C = P.findClass(Name->Text);
  if (!C) {
    // The prescan only registers well-formed `class Name : Kind` headers;
    // a malformed header lands here.
    error(*Name, "malformed class header for '" + Name->Text +
                     "' (expected `class Name : Kind`)");
    sync({TokenKind::KwClass});
    return;
  }
  if (C->loc() != Name->Loc) {
    error(*Name, "duplicate class '" + Name->Text + "'");
    sync({TokenKind::KwClass});
    return;
  }

  expect(TokenKind::Colon, "after class name");
  if (const Token *KindTok = expect(TokenKind::Ident, "as class kind")) {
    ClassKind Kind;
    if (!classKindFromName(KindTok->Text, Kind))
      error(*KindTok, "unknown class kind '" + KindTok->Text + "'");
  }
  if (match(TokenKind::KwExtends)) {
    if (const Token *Super = expect(TokenKind::Ident, "after 'extends'")) {
      if (Clazz *S = P.findClass(Super->Text)) {
        if (S == C)
          error(*Super, "class '" + C->name() + "' extends itself");
        else
          C->setSuperClass(S);
      } else {
        error(*Super, "unknown superclass '" + Super->Text + "'");
      }
    }
  }
  if (match(TokenKind::KwOuter)) {
    if (const Token *Outer = expect(TokenKind::Ident, "after 'outer'")) {
      if (Clazz *O = P.findClass(Outer->Text))
        C->setOuterClass(O);
      else
        error(*Outer, "unknown outer class '" + Outer->Text + "'");
    }
  }

  if (!expect(TokenKind::LBrace, "to open class body")) {
    sync({TokenKind::KwClass});
    return;
  }
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (check(TokenKind::KwField)) {
      parseField(*C);
    } else if (check(TokenKind::KwMethod)) {
      parseMethod(*C);
    } else {
      error(peek(), std::string("expected 'field' or 'method', found ") +
                        tokenKindName(peek().Kind));
      sync({TokenKind::KwField, TokenKind::KwMethod, TokenKind::RBrace,
            TokenKind::Semi});
    }
  }
  expect(TokenKind::RBrace, "to close class body");
}

void Parser::parseField(Clazz &C) {
  advance(); // 'field'
  const Token *Name = expect(TokenKind::Ident, "after 'field'");
  Clazz *DeclaredType = nullptr;
  if (match(TokenKind::Colon)) {
    if (const Token *TypeTok = expect(TokenKind::Ident, "as field type")) {
      DeclaredType = P.findClass(TypeTok->Text);
      if (!DeclaredType)
        error(*TypeTok, "unknown field type '" + TypeTok->Text + "'");
    }
  }
  expect(TokenKind::Semi, "after field declaration");
  if (!Name)
    return;
  // The prescan registered well-formed declarations already; detect the
  // re-encounter by source location.
  if (Field *Existing = C.findField(Name->Text)) {
    if (Existing->loc() == Name->Loc)
      return; // this very declaration, registered by the prescan
    error(*Name, "duplicate field '" + Name->Text + "'");
    return;
  }
  Field *F = C.addField(Name->Text, Name->Loc);
  F->setDeclaredType(DeclaredType);
}

void Parser::parseMethod(Clazz &C) {
  advance(); // 'method'
  const Token *Name = expect(TokenKind::Ident, "after 'method'");
  if (!Name) {
    sync({TokenKind::KwMethod, TokenKind::RBrace});
    return;
  }
  if (C.findOwnMethod(Name->Text)) {
    error(*Name, "duplicate method '" + Name->Text + "'");
    sync({TokenKind::KwMethod, TokenKind::RBrace});
    return;
  }
  Method *M = C.addMethod(Name->Text, Name->Loc);
  CurMethod = M;
  LocalCandidates.clear();

  expect(TokenKind::LParen, "after method name");
  if (!check(TokenKind::RParen)) {
    do {
      if (const Token *Param = expect(TokenKind::Ident, "as parameter name")) {
        if (M->findLocal(Param->Text))
          error(*Param, "duplicate parameter '" + Param->Text + "'");
        else
          M->addParam(Param->Text);
      } else {
        break;
      }
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameter list");
  if (expect(TokenKind::LBrace, "to open method body")) {
    parseBlock(M->body());
    expect(TokenKind::RBrace, "to close method body");
  }
  CurMethod = nullptr;
}

void Parser::parseBlock(Block &B) {
  while (parseStmt(B)) {
  }
}

bool Parser::parseStmt(Block &B) {
  switch (peek().Kind) {
  case TokenKind::RBrace:
  case TokenKind::EndOfFile:
    return false;
  case TokenKind::KwReturn:
    parseReturn(B);
    return true;
  case TokenKind::KwIf:
    parseIf(B);
    return true;
  case TokenKind::KwSynchronized:
    parseSynchronized(B);
    return true;
  case TokenKind::Ident:
    parseIdentLedStmt(B);
    return true;
  default:
    error(peek(), std::string("expected a statement, found ") +
                      tokenKindName(peek().Kind));
    sync({TokenKind::Semi, TokenKind::RBrace});
    return !check(TokenKind::RBrace) && !check(TokenKind::EndOfFile);
  }
}

template <typename T, typename... ArgTs>
T *Parser::emit(Block &B, SourceLoc Loc, ArgTs &&...Args) {
  auto S = std::make_unique<T>(CurMethod, P.nextStmtId(), Loc,
                               std::forward<ArgTs>(Args)...);
  T *Raw = S.get();
  B.append(std::move(S));
  return Raw;
}

void Parser::parseReturn(Block &B) {
  SourceLoc Loc = peek().Loc;
  advance(); // 'return'
  Local *Src = nullptr;
  if (match(TokenKind::KwNull)) {
    // `return null;` — modeled as a plain return (the analyses treat both
    // as a value-less exit; UAF uses are about loads, not returns).
  } else if (check(TokenKind::Ident)) {
    Src = localFor(advance());
  }
  expect(TokenKind::Semi, "after return statement");
  emit<ReturnStmt>(B, Loc, Src);
}

void Parser::parseIf(Block &B) {
  SourceLoc Loc = peek().Loc;
  advance(); // 'if'
  expect(TokenKind::LParen, "after 'if'");

  IfStmt *If = nullptr;
  if (match(TokenKind::Question)) {
    If = emit<IfStmt>(B, Loc, nullptr, IfStmt::TestKind::Unknown);
  } else if (const Token *CondTok = expect(TokenKind::Ident,
                                           "as if condition")) {
    Local *Cond = localFor(*CondTok);
    IfStmt::TestKind Test = IfStmt::TestKind::NotNull;
    if (match(TokenKind::BangEqual))
      Test = IfStmt::TestKind::NotNull;
    else if (match(TokenKind::EqualEqual))
      Test = IfStmt::TestKind::IsNull;
    else
      error(peek(), "expected '!=' or '==' in if condition");
    expect(TokenKind::KwNull, "as null comparison operand");
    If = emit<IfStmt>(B, Loc, Cond, Test);
  } else {
    sync({TokenKind::Semi, TokenKind::RBrace});
    return;
  }

  expect(TokenKind::RParen, "after if condition");
  if (expect(TokenKind::LBrace, "to open then-block")) {
    parseBlock(If->thenBlock());
    expect(TokenKind::RBrace, "to close then-block");
  }
  if (match(TokenKind::KwElse)) {
    if (expect(TokenKind::LBrace, "to open else-block")) {
      parseBlock(If->elseBlock());
      expect(TokenKind::RBrace, "to close else-block");
    }
  }
}

void Parser::parseSynchronized(Block &B) {
  SourceLoc Loc = peek().Loc;
  advance(); // 'synchronized'
  expect(TokenKind::LParen, "after 'synchronized'");
  Local *Lock = nullptr;
  if (const Token *LockTok = expect(TokenKind::Ident, "as lock expression"))
    Lock = localFor(*LockTok);
  expect(TokenKind::RParen, "after lock expression");
  if (!Lock) {
    sync({TokenKind::Semi, TokenKind::RBrace});
    return;
  }
  SyncStmt *Sync = emit<SyncStmt>(B, Loc, Lock);
  if (expect(TokenKind::LBrace, "to open synchronized body")) {
    parseBlock(Sync->body());
    expect(TokenKind::RBrace, "to close synchronized body");
  }
}

/// Parses statements starting with an identifier:
///   x.f = y;  x.f = null;     (store)
///   x.m(a, b);                (call, result discarded)
///   x = new C; x = new C();   (allocation)
///   x = y;                    (copy)
///   x = y.f;                  (load)
///   x = y.m(a);               (call with result)
void Parser::parseIdentLedStmt(Block &B) {
  const Token &First = advance();
  SourceLoc Loc = First.Loc;

  if (match(TokenKind::Dot)) {
    const Token *Member = expect(TokenKind::Ident, "after '.'");
    if (!Member) {
      sync({TokenKind::Semi, TokenKind::RBrace});
      return;
    }
    Local *Base = localFor(First);
    if (match(TokenKind::Equal)) {
      // Store.
      Field *F = resolveField(Base, *Member);
      Local *Src = nullptr;
      if (match(TokenKind::KwNull)) {
        Src = nullptr;
      } else if (const Token *SrcTok =
                     expect(TokenKind::Ident, "as store source")) {
        Src = localFor(*SrcTok);
      }
      expect(TokenKind::Semi, "after store");
      if (F)
        emit<StoreStmt>(B, Loc, Base, F, Src);
      return;
    }
    if (check(TokenKind::LParen)) {
      std::vector<Local *> Args = parseArgList();
      expect(TokenKind::Semi, "after call");
      emit<CallStmt>(B, Loc, nullptr, Base, Member->Text, std::move(Args));
      return;
    }
    error(peek(), "expected '=' or '(' after member access");
    sync({TokenKind::Semi, TokenKind::RBrace});
    return;
  }

  if (!expect(TokenKind::Equal, "in assignment")) {
    sync({TokenKind::Semi, TokenKind::RBrace});
    return;
  }
  Local *Dst = localFor(First);

  if (match(TokenKind::KwNew)) {
    const Token *ClassTok = expect(TokenKind::Ident, "after 'new'");
    if (match(TokenKind::LParen))
      expect(TokenKind::RParen, "after 'new C('");
    expect(TokenKind::Semi, "after allocation");
    if (!ClassTok)
      return;
    Clazz *C = classFor(*ClassTok);
    if (!C)
      return;
    emit<NewStmt>(B, Loc, Dst, C);
    noteAllocation(Dst, C);
    return;
  }

  const Token *RhsTok = expect(TokenKind::Ident, "as assignment source");
  if (!RhsTok) {
    sync({TokenKind::Semi, TokenKind::RBrace});
    return;
  }
  Local *Rhs = localFor(*RhsTok);

  if (match(TokenKind::Dot)) {
    const Token *Member = expect(TokenKind::Ident, "after '.'");
    if (!Member) {
      sync({TokenKind::Semi, TokenKind::RBrace});
      return;
    }
    if (check(TokenKind::LParen)) {
      std::vector<Local *> Args = parseArgList();
      expect(TokenKind::Semi, "after call");
      emit<CallStmt>(B, Loc, Dst, Rhs, Member->Text, std::move(Args));
      return;
    }
    expect(TokenKind::Semi, "after load");
    if (Field *F = resolveField(Rhs, *Member)) {
      emit<LoadStmt>(B, Loc, Dst, Rhs, F);
      // Typed fields make the loaded value's class visible downstream
      // (may-set, like the allocation/copy notes).
      if (F->declaredType())
        LocalCandidates[Dst].insert(F->declaredType());
    }
    return;
  }

  expect(TokenKind::Semi, "after copy");
  emit<CopyStmt>(B, Loc, Dst, Rhs);
  noteCopy(Dst, Rhs);
}

std::vector<Local *> Parser::parseArgList() {
  std::vector<Local *> Args;
  expect(TokenKind::LParen, "to open argument list");
  if (!check(TokenKind::RParen)) {
    do {
      if (const Token *Arg = expect(TokenKind::Ident, "as call argument"))
        Args.push_back(localFor(*Arg));
      else
        break;
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close argument list");
  return Args;
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

Local *Parser::localFor(const Token &NameTok) {
  assert(CurMethod && "statement outside a method");
  return CurMethod->getOrCreateLocal(NameTok.Text);
}

Clazz *Parser::classFor(const Token &NameTok) {
  if (Clazz *C = P.findClass(NameTok.Text))
    return C;
  error(NameTok, "unknown class '" + NameTok.Text + "'");
  return nullptr;
}

Field *Parser::resolveField(Local *Base, const Token &FieldTok) {
  Clazz *Current = CurMethod->parent();
  if (Base->isThis()) {
    if (Field *F = Current->findField(FieldTok.Text))
      return F;
    error(FieldTok, "class '" + Current->name() + "' has no field '" +
                        FieldTok.Text + "'");
    return nullptr;
  }

  auto It = LocalCandidates.find(Base);
  if (It == LocalCandidates.end() || It->second.empty()) {
    error(FieldTok,
          "cannot resolve field '" + FieldTok.Text + "' on local '" +
              Base->name() +
              "': no visible allocation determines its class (dereference "
              "`this` or a locally-allocated object)");
    return nullptr;
  }
  Field *Found = nullptr;
  for (Clazz *C : It->second) {
    Field *F = C->findField(FieldTok.Text);
    if (!F)
      continue;
    if (Found && Found != F) {
      error(FieldTok, "field '" + FieldTok.Text + "' on local '" +
                          Base->name() + "' is ambiguous");
      return nullptr;
    }
    Found = F;
  }
  if (!Found)
    error(FieldTok, "no candidate class of local '" + Base->name() +
                        "' declares field '" + FieldTok.Text + "'");
  return Found;
}

void Parser::noteAllocation(Local *Dst, Clazz *C) {
  LocalCandidates[Dst].insert(C);
}

void Parser::noteCopy(Local *Dst, Local *Src) {
  if (Src->isThis()) {
    LocalCandidates[Dst].insert(CurMethod->parent());
    return;
  }
  auto It = LocalCandidates.find(Src);
  if (It != LocalCandidates.end())
    LocalCandidates[Dst].insert(It->second.begin(), It->second.end());
}
