//===- frontend/Lexer.h - AIR tokenizer -------------------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the AIR concrete syntax. Line comments use `//`.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_FRONTEND_LEXER_H
#define NADROID_FRONTEND_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace nadroid::frontend {

enum class TokenKind : uint8_t {
  Ident,
  String,     // "..."
  KwApp,
  KwManifest,
  KwClass,
  KwField,
  KwMethod,
  KwExtends,
  KwOuter,
  KwNew,
  KwNull,
  KwReturn,
  KwIf,
  KwElse,
  KwSynchronized,
  LBrace,
  RBrace,
  LParen,
  RParen,
  Semi,
  Comma,
  Colon,
  Dot,
  Equal,      // =
  EqualEqual, // ==
  BangEqual,  // !=
  Question,   // ?
  EndOfFile,
  Error,
};

/// Returns a printable token-kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Error;
  /// Identifier or string contents (unquoted for strings).
  std::string Text;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Tokenizes a whole buffer up front (the parser pre-scans class headers,
/// which is simplest over a token vector).
class Lexer {
public:
  /// \p FileId is the SourceManager id of the buffer being lexed.
  Lexer(std::string_view Buffer, uint32_t FileId, DiagnosticEngine &Diags);

  /// Lexes the entire buffer; the result ends with an EndOfFile token.
  std::vector<Token> lexAll();

private:
  std::string_view Buffer;
  uint32_t FileId;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;

  SourceLoc here() const { return SourceLoc(FileId, Line, Column); }
  char peek(size_t Ahead = 0) const;
  char advance();
  void skipTrivia();
  Token lexToken();
  Token make(TokenKind Kind, SourceLoc Loc, std::string Text = "");
};

} // namespace nadroid::frontend

#endif // NADROID_FRONTEND_LEXER_H
