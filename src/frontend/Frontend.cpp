//===- frontend/Frontend.cpp - AIR parsing entry points ---------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <fstream>
#include <sstream>

using namespace nadroid;
using namespace nadroid::frontend;

ParseResult frontend::parseProgramText(std::string_view Source,
                                       const std::string &BufferName,
                                       const std::string &AppName) {
  ParseResult Result;
  Result.Prog = std::make_unique<ir::Program>(AppName);
  uint32_t FileId = Result.Prog->sourceManager().addFile(BufferName);

  DiagnosticEngine Diags(Result.Prog->sourceManager());
  Lexer Lex(Source, FileId, Diags);
  Parser P(Lex.lexAll(), *Result.Prog, Diags);
  bool Parsed = P.parseProgram();
  bool Verified = Parsed && ir::verifyProgram(*Result.Prog, Diags);

  Result.Diags = Diags.diagnostics();
  Result.Success = Parsed && Verified;
  return Result;
}

/// App name: file stem.
static std::string stemOf(const std::string &Path) {
  std::string Stem = Path;
  if (size_t Slash = Stem.find_last_of('/'); Slash != std::string::npos)
    Stem = Stem.substr(Slash + 1);
  if (size_t Ext = Stem.find_last_of('.'); Ext != std::string::npos)
    Stem = Stem.substr(0, Ext);
  return Stem;
}

std::string frontend::canonicalProgramBytes(const ir::Program &P) {
  std::string Text = ir::programToString(P);
  // The printer's first line is `app "<name>";`, and the name is the
  // file stem — identity, not content. Blank it so a renamed copy of an
  // unchanged app keeps its cache key.
  if (Text.rfind("app \"", 0) == 0) {
    if (size_t Eol = Text.find('\n'); Eol != std::string::npos)
      Text.replace(0, Eol, "app \"\";");
  }
  return Text;
}

ParseResult frontend::parseProgramFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    ParseResult Result;
    // Name the placeholder program after the file so downstream reports
    // (e.g. batch rows) identify the app, not the literal "invalid".
    Result.Prog = std::make_unique<ir::Program>(stemOf(Path));
    Result.Diags.push_back(
        {DiagSeverity::Error, SourceLoc(), "cannot open file '" + Path + "'"});
    return Result;
  }
  std::ostringstream Contents;
  Contents << In.rdbuf();

  return parseProgramText(Contents.str(), Path, stemOf(Path));
}
