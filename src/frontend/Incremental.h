//===- frontend/Incremental.h - Re-parse reconciliation ---------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconciles a *resident* parsed program (held hot by the serve daemon's
/// session table, with a live AnalysisManager hanging off it) with a
/// *fresh* parse of the edited file, so re-analysis only pays for what
/// the edit actually changed:
///
///  * formatting-only edit — the two programs print identically. Every
///    declaration and statement keeps its object identity; only source
///    locations are rebased onto the fresh parse. No analysis needs to
///    rebuild.
///
///  * method-body edit — the declaration skeleton (classes, fields,
///    method signatures, manifest) is unchanged but some bodies differ.
///    Changed bodies are regrafted: the resident method's body is reset
///    and the fresh body cloned into it, mapping operands by name onto
///    resident declarations. Unchanged methods keep their statements, so
///    the per-method CFG/guard/alloc/consumer caches stay valid for them
///    (the manager evicts just the regrafted methods' entries).
///
///  * structural edit — anything else. The caller swaps in the fresh
///    program and a cold AnalysisManager.
///
/// Identity contract: after reconciliation the resident program must be
/// indistinguishable from the fresh parse — statement and local ids are
/// copied node-by-node (report ordering sorts on them and they shift
/// program-wide when an edit changes statement counts), id allocators
/// are realigned, and the result is verified by comparing canonical
/// printed bytes. Any discrepancy demotes the edit to Structural, so the
/// fast path can never produce output that differs from a one-shot
/// parse. Byte-identical daemon responses fall out of this contract.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_FRONTEND_INCREMENTAL_H
#define NADROID_FRONTEND_INCREMENTAL_H

#include "ir/Ir.h"

#include <vector>

namespace nadroid::frontend {

/// What an edit turned out to be, after reconciliation.
enum class EditKind {
  FormattingOnly, ///< locations rebased; no statement changed
  BodiesChanged,  ///< ChangedMethods regrafted; the rest untouched
  Structural,     ///< reconciliation refused — swap in the fresh parse
};

const char *editKindName(EditKind K);

struct IncrementalEdit {
  EditKind Kind = EditKind::Structural;
  /// Resident methods whose bodies were regrafted (BodiesChanged only).
  /// These are the methods whose per-method cache entries are stale.
  std::vector<const ir::Method *> ChangedMethods;
};

/// Reconciles \p Resident with \p Fresh (a just-parsed copy of the same
/// application's edited source). On FormattingOnly/BodiesChanged returns
/// with \p Resident semantically and byte-identically equal to \p Fresh;
/// on Structural \p Resident may be partially rebased and must be
/// discarded in favor of \p Fresh. \p Fresh is never mutated and is not
/// retained — its ids and locations are copied, not referenced.
IncrementalEdit applyIncrementalEdit(ir::Program &Resident,
                                     const ir::Program &Fresh);

} // namespace nadroid::frontend

#endif // NADROID_FRONTEND_INCREMENTAL_H
