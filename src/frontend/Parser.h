//===- frontend/Parser.h - AIR parser ---------------------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for AIR. The parser pre-scans class headers so
/// classes may be referenced before their declaration, resolves fields on
/// `this` via the class hierarchy and on other locals via the allocations
/// parsed so far, and recovers at statement boundaries so several errors
/// can be reported per run.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_FRONTEND_PARSER_H
#define NADROID_FRONTEND_PARSER_H

#include "frontend/Lexer.h"
#include "ir/Stmt.h"

#include <map>
#include <set>

namespace nadroid::frontend {

/// Parses a token stream into an existing (empty) Program.
class Parser {
public:
  Parser(std::vector<Token> Tokens, ir::Program &P, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), P(P), Diags(Diags) {}

  /// Parses the whole buffer. Returns true when no errors were reported.
  bool parseProgram();

private:
  std::vector<Token> Tokens;
  ir::Program &P;
  DiagnosticEngine &Diags;
  size_t Pos = 0;

  // Per-method parse state.
  ir::Method *CurMethod = nullptr;
  /// Classes each local may hold, from allocations/copies parsed so far;
  /// used to resolve `x.f` on non-this bases.
  std::map<ir::Local *, std::set<ir::Clazz *>> LocalCandidates;

  //===--------------------------------------------------------------------===//
  // Token cursor
  //===--------------------------------------------------------------------===//
  const Token &peek(size_t Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool match(TokenKind Kind);
  /// Consumes a token of \p Kind or reports an error; returns nullptr on
  /// mismatch (the cursor does not advance).
  const Token *expect(TokenKind Kind, const char *Context);
  void error(const Token &Tok, std::string Message);
  /// Skips tokens until one of \p StopKinds (consuming a Semi stop).
  void sync(std::initializer_list<TokenKind> StopKinds);

  //===--------------------------------------------------------------------===//
  // Grammar
  //===--------------------------------------------------------------------===//
  void prescanClasses();
  void prescanFields();
  void parseTopLevel();
  void parseManifestDirective();
  void parseClass();
  void parseField(ir::Clazz &C);
  void parseMethod(ir::Clazz &C);
  void parseBlock(ir::Block &B);
  /// Parses one statement into \p B; returns false when the next token
  /// ends the block.
  bool parseStmt(ir::Block &B);
  void parseIdentLedStmt(ir::Block &B);
  void parseIf(ir::Block &B);
  void parseSynchronized(ir::Block &B);
  void parseReturn(ir::Block &B);

  //===--------------------------------------------------------------------===//
  // Helpers
  //===--------------------------------------------------------------------===//
  ir::Local *localFor(const Token &NameTok);
  ir::Clazz *classFor(const Token &NameTok);
  /// Resolves field \p FieldTok on base \p Base (this → hierarchy lookup;
  /// otherwise the candidate classes recorded so far).
  ir::Field *resolveField(ir::Local *Base, const Token &FieldTok);
  void noteAllocation(ir::Local *Dst, ir::Clazz *C);
  void noteCopy(ir::Local *Dst, ir::Local *Src);
  std::vector<ir::Local *> parseArgList();

  template <typename T, typename... ArgTs>
  T *emit(ir::Block &B, SourceLoc Loc, ArgTs &&...Args);
};

} // namespace nadroid::frontend

#endif // NADROID_FRONTEND_PARSER_H
