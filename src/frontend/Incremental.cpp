//===- frontend/Incremental.cpp - Re-parse reconciliation ------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "frontend/Incremental.h"

#include "frontend/Frontend.h"
#include "ir/Printer.h"
#include "ir/Stmt.h"
#include "support/Casting.h"

#include <unordered_map>

using namespace nadroid;
using namespace nadroid::frontend;

const char *frontend::editKindName(EditKind K) {
  switch (K) {
  case EditKind::FormattingOnly:
    return "formatting-only";
  case EditKind::BodiesChanged:
    return "bodies-changed";
  case EditKind::Structural:
    return "structural";
  }
  return "structural";
}

namespace {

/// True when the two programs share a declaration skeleton: same classes
/// in the same order with the same kinds/supers/outers, same fields and
/// method signatures, same manifest. Bodies are NOT compared — that is
/// the per-method diff's job. The app name is derived from the file name
/// (both sides parsed the same path), so it always matches.
bool sameSkeleton(const ir::Program &A, const ir::Program &B) {
  auto SameName = [](const auto *X, const auto *Y) {
    if (!X || !Y)
      return X == nullptr && Y == nullptr;
    return X->name() == Y->name();
  };
  if (A.name() != B.name())
    return false;
  if (A.manifestComponents().size() != B.manifestComponents().size())
    return false;
  for (size_t I = 0; I < A.manifestComponents().size(); ++I)
    if (!SameName(A.manifestComponents()[I], B.manifestComponents()[I]))
      return false;
  if (A.classes().size() != B.classes().size())
    return false;
  for (size_t CI = 0; CI < A.classes().size(); ++CI) {
    const ir::Clazz &Ca = *A.classes()[CI];
    const ir::Clazz &Cb = *B.classes()[CI];
    if (Ca.name() != Cb.name() || Ca.kind() != Cb.kind() ||
        !SameName(Ca.superClass(), Cb.superClass()) ||
        !SameName(Ca.outerClass(), Cb.outerClass()))
      return false;
    if (Ca.fields().size() != Cb.fields().size())
      return false;
    for (size_t FI = 0; FI < Ca.fields().size(); ++FI) {
      const ir::Field &Fa = *Ca.fields()[FI];
      const ir::Field &Fb = *Cb.fields()[FI];
      if (Fa.name() != Fb.name() ||
          !SameName(Fa.declaredType(), Fb.declaredType()))
        return false;
    }
    if (Ca.methods().size() != Cb.methods().size())
      return false;
    for (size_t MI = 0; MI < Ca.methods().size(); ++MI) {
      const ir::Method &Ma = *Ca.methods()[MI];
      const ir::Method &Mb = *Cb.methods()[MI];
      if (Ma.name() != Mb.name() ||
          Ma.params().size() != Mb.params().size())
        return false;
      for (size_t PI = 0; PI < Ma.params().size(); ++PI)
        if (Ma.params()[PI]->name() != Mb.params()[PI]->name())
          return false;
    }
  }
  return true;
}

/// Clones the fresh method's body into the (reset) resident method,
/// resolving operands by name onto resident declarations. Ids and
/// locations are copied verbatim from the fresh statements — the fresh
/// program IS a one-shot parse, so its numbering is the ground truth the
/// regrafted program must reproduce.
class BodyGrafter {
public:
  BodyGrafter(ir::Program &RP, ir::Method &RM, const ir::Method &FM)
      : RP(RP), RM(RM) {
    LocalMap.emplace(FM.thisLocal(), RM.thisLocal());
    for (size_t I = 0; I < FM.params().size(); ++I)
      LocalMap.emplace(FM.params()[I], RM.params()[I]);
  }

  void graft(const ir::Block &From, ir::Block &To) {
    for (const auto &S : From.stmts())
      To.append(clone(*S));
  }

private:
  ir::Program &RP;
  ir::Method &RM;
  std::unordered_map<const ir::Local *, ir::Local *> LocalMap;

  /// Body locals are created on first mention in lexical operand order —
  /// the same order the parser creates them — so the resident and fresh
  /// Locals vectors line up for the id-copy pass that follows.
  ir::Local *local(const ir::Local *L) {
    if (!L)
      return nullptr;
    auto It = LocalMap.find(L);
    if (It != LocalMap.end())
      return It->second;
    ir::Local *R = RM.getOrCreateLocal(L->name());
    LocalMap.emplace(L, R);
    return R;
  }

  ir::Clazz *clazz(const ir::Clazz *C) {
    return C ? RP.findClass(C->name()) : nullptr;
  }

  ir::Field *field(const ir::Field *F) {
    ir::Clazz *Owner = RP.findClass(F->parent()->name());
    return Owner ? Owner->findField(F->name()) : nullptr;
  }

  std::unique_ptr<ir::Stmt> clone(const ir::Stmt &S) {
    const unsigned Id = S.id();
    const SourceLoc Loc = S.loc();
    switch (S.kind()) {
    case ir::Stmt::Kind::New: {
      const auto *N = cast<ir::NewStmt>(&S);
      return std::make_unique<ir::NewStmt>(&RM, Id, Loc, local(N->dst()),
                                           clazz(N->allocClass()));
    }
    case ir::Stmt::Kind::Load: {
      const auto *L = cast<ir::LoadStmt>(&S);
      ir::Local *Dst = local(L->dst());
      ir::Local *Base = local(L->base());
      return std::make_unique<ir::LoadStmt>(&RM, Id, Loc, Dst, Base,
                                            field(L->field()));
    }
    case ir::Stmt::Kind::Store: {
      const auto *St = cast<ir::StoreStmt>(&S);
      ir::Local *Base = local(St->base());
      ir::Field *F = field(St->field());
      return std::make_unique<ir::StoreStmt>(&RM, Id, Loc, Base, F,
                                             local(St->src()));
    }
    case ir::Stmt::Kind::Copy: {
      const auto *C = cast<ir::CopyStmt>(&S);
      ir::Local *Dst = local(C->dst());
      return std::make_unique<ir::CopyStmt>(&RM, Id, Loc, Dst,
                                            local(C->src()));
    }
    case ir::Stmt::Kind::Call: {
      const auto *C = cast<ir::CallStmt>(&S);
      ir::Local *Dst = local(C->dst());
      ir::Local *Recv = local(C->recv());
      std::vector<ir::Local *> Args;
      Args.reserve(C->args().size());
      for (const ir::Local *A : C->args())
        Args.push_back(local(A));
      return std::make_unique<ir::CallStmt>(&RM, Id, Loc, Dst, Recv,
                                            C->callee(), std::move(Args));
    }
    case ir::Stmt::Kind::Return: {
      const auto *R = cast<ir::ReturnStmt>(&S);
      return std::make_unique<ir::ReturnStmt>(&RM, Id, Loc, local(R->src()));
    }
    case ir::Stmt::Kind::If: {
      const auto *If = cast<ir::IfStmt>(&S);
      auto Cloned = std::make_unique<ir::IfStmt>(&RM, Id, Loc,
                                                 local(If->cond()),
                                                 If->test());
      graft(If->thenBlock(), Cloned->thenBlock());
      graft(If->elseBlock(), Cloned->elseBlock());
      return Cloned;
    }
    case ir::Stmt::Kind::Sync: {
      const auto *Sy = cast<ir::SyncStmt>(&S);
      auto Cloned =
          std::make_unique<ir::SyncStmt>(&RM, Id, Loc, local(Sy->lock()));
      graft(Sy->body(), Cloned->body());
      return Cloned;
    }
    }
    return nullptr;
  }
};

/// Copies ids and locations from \p From onto \p To, statement by
/// statement. Returns false when the shapes disagree (which demotes the
/// whole edit to Structural).
bool rebaseBlock(ir::Block &To, const ir::Block &From) {
  if (To.size() != From.size())
    return false;
  for (size_t I = 0; I < To.size(); ++I) {
    ir::Stmt &T = *To.stmts()[I];
    const ir::Stmt &F = *From.stmts()[I];
    if (T.kind() != F.kind())
      return false;
    T.setId(F.id());
    T.setLoc(F.loc());
    if (T.kind() == ir::Stmt::Kind::If) {
      auto &Ti = *cast<ir::IfStmt>(&T);
      const auto &Fi = *cast<ir::IfStmt>(&F);
      if (!rebaseBlock(Ti.thenBlock(), Fi.thenBlock()) ||
          !rebaseBlock(Ti.elseBlock(), Fi.elseBlock()))
        return false;
    } else if (T.kind() == ir::Stmt::Kind::Sync) {
      auto &Ts = *cast<ir::SyncStmt>(&T);
      const auto &Fs = *cast<ir::SyncStmt>(&F);
      if (!rebaseBlock(Ts.body(), Fs.body()))
        return false;
    }
  }
  return true;
}

/// Rebases every declaration and statement of \p R onto \p F: locations
/// everywhere, ids where they are per-parse (statements and locals), and
/// the program's id allocators. Requires identical shapes — a false
/// return means reconciliation must fall back to a full swap.
bool rebaseProgram(ir::Program &R, const ir::Program &F) {
  for (size_t CI = 0; CI < R.classes().size(); ++CI) {
    ir::Clazz &Rc = *R.classes()[CI];
    const ir::Clazz &Fc = *F.classes()[CI];
    Rc.setLoc(Fc.loc());
    for (size_t FI = 0; FI < Rc.fields().size(); ++FI)
      Rc.fields()[FI]->setLoc(Fc.fields()[FI]->loc());
    for (size_t MI = 0; MI < Rc.methods().size(); ++MI) {
      ir::Method &Rm = *Rc.methods()[MI];
      const ir::Method &Fm = *Fc.methods()[MI];
      Rm.setLoc(Fm.loc());
      if (Rm.locals().size() != Fm.locals().size())
        return false;
      for (size_t LI = 0; LI < Rm.locals().size(); ++LI) {
        if (Rm.locals()[LI]->name() != Fm.locals()[LI]->name())
          return false;
        Rm.locals()[LI]->setId(Fm.locals()[LI]->id());
      }
      if (!rebaseBlock(Rm.body(), Fm.body()))
        return false;
    }
  }
  R.setIdBounds(F.stmtIdBound(), F.localIdBound(), F.fieldIdBound(),
                F.declIdBound());
  return true;
}

} // namespace

IncrementalEdit frontend::applyIncrementalEdit(ir::Program &Resident,
                                               const ir::Program &Fresh) {
  IncrementalEdit Edit;
  if (!sameSkeleton(Resident, Fresh))
    return Edit; // Structural

  // Which bodies did the edit touch? The printed form is the canonical
  // body identity — it ignores ids, locations and source formatting.
  std::vector<std::pair<ir::Method *, const ir::Method *>> Changed;
  for (size_t CI = 0; CI < Resident.classes().size(); ++CI) {
    ir::Clazz &Rc = *Resident.classes()[CI];
    const ir::Clazz &Fc = *Fresh.classes()[CI];
    for (size_t MI = 0; MI < Rc.methods().size(); ++MI) {
      ir::Method *Rm = Rc.methods()[MI].get();
      const ir::Method *Fm = Fc.methods()[MI].get();
      if (ir::methodToString(*Rm) != ir::methodToString(*Fm))
        Changed.emplace_back(Rm, Fm);
    }
  }

  for (auto &[Rm, Fm] : Changed) {
    Rm->resetBodyForReparse();
    BodyGrafter(Resident, *Rm, *Fm).graft(Fm->body(), Rm->body());
  }

  if (!rebaseProgram(Resident, Fresh))
    return Edit; // Structural — shapes diverged mid-rebase

  // The identity backstop: a regrafted program that does not print
  // byte-for-byte like the fresh parse is thrown away, never served.
  if (!Changed.empty() &&
      canonicalProgramBytes(Resident) != canonicalProgramBytes(Fresh))
    return Edit; // Structural

  Edit.Kind = Changed.empty() ? EditKind::FormattingOnly
                              : EditKind::BodiesChanged;
  for (auto &Pair : Changed)
    Edit.ChangedMethods.push_back(Pair.first);
  return Edit;
}
