//===- race/Warning.h - UAF warning representation --------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A potential UAF ordering violation (§5): a (free, use) pair of
/// operations on the same field whose base objects may alias, reachable
/// from at least one pair of distinct modeled threads. Each warning tracks
/// every (use-thread, free-thread) combination that realizes it — filters
/// prune combinations, and a warning dies when none survive.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_RACE_WARNING_H
#define NADROID_RACE_WARNING_H

#include "ir/Stmt.h"
#include "threadify/ThreadForest.h"

#include <vector>

namespace nadroid::race {

/// One (use-thread, free-thread) realization of a warning.
struct ThreadPair {
  const threadify::ModeledThread *UseThread = nullptr;
  const threadify::ModeledThread *FreeThread = nullptr;

  friend bool operator<(const ThreadPair &A, const ThreadPair &B) {
    if (A.UseThread != B.UseThread)
      return A.UseThread->id() < B.UseThread->id();
    return A.FreeThread->id() < B.FreeThread->id();
  }
  friend bool operator==(const ThreadPair &A, const ThreadPair &B) {
    return A.UseThread == B.UseThread && A.FreeThread == B.FreeThread;
  }
};

/// A potential UAF: use (getfield) vs free (putfield null) on one field.
struct UafWarning {
  const ir::LoadStmt *Use = nullptr;
  const ir::StoreStmt *Free = nullptr;
  const ir::Field *F = nullptr;
  /// Every thread pair under which the base objects may alias; sorted.
  std::vector<ThreadPair> Pairs;

  /// Stable identity for reports: "<field> use@<id> free@<id>".
  std::string key() const;
};

} // namespace nadroid::race

#endif // NADROID_RACE_WARNING_H
