//===- race/Detector.cpp - UAF racy-pair enumeration (§5) ---------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "race/Detector.h"

#include <algorithm>
#include <map>

using namespace nadroid;
using namespace nadroid::race;
using namespace nadroid::ir;
using analysis::MethodCtx;
using analysis::ObjectId;
using threadify::ModeledThread;

std::string UafWarning::key() const {
  return F->qualifiedName() + " use@" + std::to_string(Use->id()) +
         " free@" + std::to_string(Free->id());
}

namespace {

/// One access site as executed by one thread: the union of base points-to
/// sets over every context the thread reaches the site under.
template <typename StmtT> struct AccessRec {
  const StmtT *Site = nullptr;
  const ModeledThread *Thread = nullptr;
  std::set<ObjectId> BaseObjs;
};

bool intersects(const std::set<ObjectId> &A, const std::set<ObjectId> &B) {
  auto ItA = A.begin(), ItB = B.begin();
  while (ItA != A.end() && ItB != B.end()) {
    if (*ItA < *ItB)
      ++ItA;
    else if (*ItB < *ItA)
      ++ItB;
    else
      return true;
  }
  return false;
}

} // namespace

DetectorResult race::detectUafWarnings(const threadify::ThreadForest &Forest,
                                       const analysis::PointsToAnalysis &PTA,
                                       const analysis::ThreadReach &Reach) {
  DetectorResult Result;

  // Per field: uses and frees, each attributed to (site, thread) with the
  // union of base objects over the thread's contexts.
  std::map<const Field *, std::vector<AccessRec<LoadStmt>>> UsesOf;
  std::map<const Field *, std::vector<AccessRec<StoreStmt>>> FreesOf;
  uint64_t NumUses = 0, NumFrees = 0;

  for (const auto &T : Forest.threads()) {
    // (site → accumulated objects) for this thread.
    std::map<const LoadStmt *, std::set<ObjectId>> ThreadUses;
    std::map<const StoreStmt *, std::set<ObjectId>> ThreadFrees;
    for (const MethodCtx &Ctx : Reach.contextsOf(T.get())) {
      forEachStmt(*Ctx.M, [&](const Stmt &S) {
        if (const auto *Load = dyn_cast<LoadStmt>(&S)) {
          const auto &Pts = PTA.ptsOf(Load->base(), Ctx);
          ThreadUses[Load].insert(Pts.begin(), Pts.end());
        } else if (const auto *Store = dyn_cast<StoreStmt>(&S)) {
          if (!Store->isNullStore())
            return;
          const auto &Pts = PTA.ptsOf(Store->base(), Ctx);
          ThreadFrees[Store].insert(Pts.begin(), Pts.end());
        }
      });
    }
    for (auto &[Load, Objs] : ThreadUses) {
      if (Objs.empty())
        continue;
      UsesOf[Load->field()].push_back({Load, T.get(), std::move(Objs)});
      ++NumUses;
    }
    for (auto &[Store, Objs] : ThreadFrees) {
      if (Objs.empty())
        continue;
      FreesOf[Store->field()].push_back({Store, T.get(), std::move(Objs)});
      ++NumFrees;
    }
  }

  // Enumerate (use, free) pairs with aliasing bases across distinct
  // threads; group thread pairs by (use site, free site).
  std::map<std::pair<const LoadStmt *, const StoreStmt *>,
           std::vector<ThreadPair>>
      Grouped;
  uint64_t NumPairs = 0;
  for (const auto &[F, Uses] : UsesOf) {
    auto FreeIt = FreesOf.find(F);
    if (FreeIt == FreesOf.end())
      continue;
    for (const auto &U : Uses) {
      for (const auto &Fr : FreeIt->second) {
        if (U.Thread == Fr.Thread)
          continue; // one thread is sequential with itself
        if (!intersects(U.BaseObjs, Fr.BaseObjs))
          continue;
        Grouped[{U.Site, Fr.Site}].push_back({U.Thread, Fr.Thread});
        ++NumPairs;
      }
    }
  }

  for (auto &[Key, Pairs] : Grouped) {
    std::sort(Pairs.begin(), Pairs.end());
    Pairs.erase(std::unique(Pairs.begin(), Pairs.end()), Pairs.end());
    UafWarning W;
    W.Use = Key.first;
    W.Free = Key.second;
    W.F = Key.first->field();
    W.Pairs = std::move(Pairs);
    Result.Warnings.push_back(std::move(W));
  }

  // Deterministic report order: by use site id, then free site id.
  std::sort(Result.Warnings.begin(), Result.Warnings.end(),
            [](const UafWarning &A, const UafWarning &B) {
              if (A.Use->id() != B.Use->id())
                return A.Use->id() < B.Use->id();
              return A.Free->id() < B.Free->id();
            });

  Result.Stats.set("race.uses", NumUses);
  Result.Stats.set("race.frees", NumFrees);
  Result.Stats.set("race.pairs", NumPairs);
  Result.Stats.set("race.warnings", Result.Warnings.size());
  return Result;
}
