//===- race/Detector.h - UAF racy-pair enumeration (§5) ---------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modified-Chord detector of §5: enumerate (use, free) pairs on the
/// same field whose bases may alias under the k-object-sensitive points-to
/// analysis, across distinct modeled threads. Per the paper, lockset
/// evidence does NOT suppress a pair (locks give atomicity, not ordering)
/// and no MHP analysis runs (the HB filters replace it).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_RACE_DETECTOR_H
#define NADROID_RACE_DETECTOR_H

#include "analysis/PointsTo.h"
#include "analysis/ThreadReach.h"
#include "race/Warning.h"
#include "support/Statistic.h"

namespace nadroid::race {

/// Detection output: warnings in deterministic order plus counters
/// ("race.uses", "race.frees", "race.pairs", "race.warnings").
struct DetectorResult {
  std::vector<UafWarning> Warnings;
  StatRegistry Stats;
};

/// Runs detection over the analyzed program.
DetectorResult detectUafWarnings(const threadify::ThreadForest &Forest,
                                 const analysis::PointsToAnalysis &PTA,
                                 const analysis::ThreadReach &Reach);

} // namespace nadroid::race

#endif // NADROID_RACE_DETECTOR_H
