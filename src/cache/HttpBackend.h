//===- cache/HttpBackend.h - Remote HTTP action-cache backend ---*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `http://` ResultCache backend: a dumb content-addressed object
/// store over HTTP/1.1, the protocol shape of Bazel's remote action
/// cache. One entry is one object:
///
///   GET <prefix>/<2-hex>/<key>   200 + body = the entry line
///                                404        = clean miss
///   PUT <prefix>/<2-hex>/<key>   2xx        = stored
///
/// The two-level `<2-hex>/` split mirrors the dir backend's sharded
/// layout exactly, so a directory cache exposed over any static file
/// server (plus PUT) is already a valid remote cache.
///
/// Transport discipline (the CacheBackend contract, made concrete):
/// every request runs on its own connection under one wall-clock
/// deadline covering resolve + connect + send + receive — default
/// 5000 ms, overridable via NADROID_CACHE_TIMEOUT_MS so tests can make
/// a stalled server give up in milliseconds. Refused connections,
/// timeouts, malformed responses, non-404 error statuses and bodies
/// shorter than their Content-Length all degrade to a counted miss;
/// only a 200 whose body length matches its header is a hit. No
/// keep-alive, no TLS, no redirects — a cache host is infrastructure
/// you point at, not negotiate with.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_CACHE_HTTPBACKEND_H
#define NADROID_CACHE_HTTPBACKEND_H

#include "cache/CacheBackend.h"

#include <string>

namespace nadroid::cache {

class HttpCacheBackend : public CacheBackend {
public:
  /// \p Url must look like `http://host:port[/prefix]`; see parseUrl.
  /// An unparseable URL yields a permanently-failing backend (every
  /// call counts a failure) rather than a crash — the driver validates
  /// the spec before constructing one.
  explicit HttpCacheBackend(const std::string &Url);

  bool lookup(const std::string &KeyHex, std::string &EntryLine) override;
  bool store(const std::string &KeyHex, const std::string &EntryLine) override;
  const char *scheme() const override { return "http"; }

  /// Splits `http://host:port/prefix` into its parts (port defaults to
  /// 80, prefix to ""). Returns false on anything else — no scheme, an
  /// empty host, a non-numeric port. Exposed so the driver can reject a
  /// bad --cache-dir spec with a diagnostic instead of a dead backend.
  static bool parseUrl(const std::string &Url, std::string &Host,
                       unsigned &Port, std::string &Prefix);

  const std::string &url() const { return Url; }

private:
  /// `<prefix>/<first 2 hex>/<key>` — the object key for \p KeyHex.
  std::string objectPath(const std::string &KeyHex) const;

  /// One request/response exchange on a fresh connection under the
  /// deadline. Returns false (counting a failure unless \p *CleanMiss
  /// was set) on any transport or protocol error. On true, \p Status
  /// and \p Body carry the response.
  bool exchange(const std::string &Request, int &Status, std::string &Body);

  std::string Url;
  std::string Host;
  unsigned Port = 0;
  std::string Prefix;
  bool Valid = false;
  long TimeoutMs = 5000;
};

} // namespace nadroid::cache

#endif // NADROID_CACHE_HTTPBACKEND_H
