//===- cache/TestCacheServer.cpp - In-memory HTTP cache server ------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "cache/TestCacheServer.h"

#include "support/StringUtils.h"

#include <chrono>
#include <cstring>
#include <sstream>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace nadroid;
using namespace nadroid::cache;

TestCacheServer::TestCacheServer() {
#ifndef _WIN32
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return;
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = 0; // ephemeral: the kernel picks a free port
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0) {
    ::close(ListenFd);
    ListenFd = -1;
    return;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) <
      0) {
    ::close(ListenFd);
    ListenFd = -1;
    return;
  }
  Port = ntohs(Addr.sin_port);
  Thread = std::thread([this] { serveLoop(); });
#endif
}

TestCacheServer::~TestCacheServer() { stop(); }

std::string TestCacheServer::url() const {
  return "http://127.0.0.1:" + std::to_string(Port);
}

size_t TestCacheServer::entryCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}

void TestCacheServer::stop() {
#ifndef _WIN32
  if (Stopping.exchange(true))
    return;
  StallCv.notify_all();
  if (ListenFd >= 0) {
    // shutdown unblocks the accept in serveLoop; close alone does not
    // on all platforms.
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (Thread.joinable())
    Thread.join();
#endif
}

#ifndef _WIN32

namespace {

/// Reads from \p Fd until the full header block (and, given
/// Content-Length, the full body) has arrived or the peer went away.
bool readRequest(int Fd, std::string &Out) {
  char Buf[4096];
  size_t BodyNeeded = std::string::npos;
  size_t HdrEnd = std::string::npos;
  for (;;) {
    if (HdrEnd != std::string::npos &&
        Out.size() >= HdrEnd + 4 + (BodyNeeded == std::string::npos
                                        ? 0
                                        : BodyNeeded))
      return true;
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      return HdrEnd != std::string::npos;
    Out.append(Buf, static_cast<size_t>(N));
    if (Out.size() > (16u << 20))
      return false;
    if (HdrEnd == std::string::npos) {
      HdrEnd = Out.find("\r\n\r\n");
      if (HdrEnd != std::string::npos) {
        std::string Lower = Out.substr(0, HdrEnd);
        for (char &C : Lower)
          C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
        size_t Cl = Lower.find("content-length:");
        if (Cl != std::string::npos) {
          unsigned long long Len = 0;
          size_t ValStart = Cl + std::strlen("content-length:");
          size_t ValEnd = Lower.find("\r\n", ValStart);
          std::string Val = Lower.substr(ValStart, ValEnd - ValStart);
          size_t B = Val.find_first_not_of(" \t");
          size_t E = Val.find_last_not_of(" \t\r\n");
          if (B != std::string::npos &&
              parseUnsigned(Val.substr(B, E - B + 1), Len))
            BodyNeeded = static_cast<size_t>(Len);
        } else {
          BodyNeeded = 0;
        }
      }
    }
  }
}

void sendResponse(int Fd, int Status, const std::string &Reason,
                  const std::string &Body, size_t AdvertisedLen) {
  std::ostringstream OS;
  OS << "HTTP/1.1 " << Status << " " << Reason << "\r\n"
     << "Content-Length: " << AdvertisedLen << "\r\n"
     << "Connection: close\r\n\r\n"
     << Body;
  std::string Out = OS.str();
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (N <= 0)
      return;
    Off += static_cast<size_t>(N);
  }
}

} // namespace

void TestCacheServer::serveLoop() {
  for (;;) {
    int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0) {
      if (Stopping.load())
        return;
      continue;
    }
    handleConnection(Client);
    ::close(Client);
    if (Stopping.load())
      return;
  }
}

void TestCacheServer::handleConnection(int Client) {
  std::string Raw;
  if (!readRequest(Client, Raw))
    return;
  size_t LineEnd = Raw.find("\r\n");
  std::istringstream Line(Raw.substr(0, LineEnd));
  std::string Method, Path;
  Line >> Method >> Path;

  if (Method == "GET")
    Gets.fetch_add(1);
  else if (Method == "PUT")
    Puts.fetch_add(1);

  FailMode M = Mode.load();
  if (M == FailMode::Stall) {
    // Hold the connection open, sending nothing, until the client's
    // timeout fires or the server is stopped — bounded so a forgotten
    // fail mode cannot wedge a test binary.
    std::unique_lock<std::mutex> Lock(StallMu);
    StallCv.wait_for(Lock, std::chrono::seconds(30),
                     [this] { return Stopping.load(); });
    return;
  }
  if (M == FailMode::Http500) {
    sendResponse(Client, 500, "Internal Server Error", "", 0);
    return;
  }

  if (Method == "GET") {
    std::string Body;
    bool Found = false;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Entries.find(Path);
      if (It != Entries.end()) {
        Body = It->second;
        Found = true;
      }
    }
    if (!Found) {
      sendResponse(Client, 404, "Not Found", "", 0);
      return;
    }
    if (M == FailMode::TruncateBody) {
      // Advertise the real length, deliver half: the client must treat
      // the short body as a transport failure, never parse a prefix.
      sendResponse(Client, 200, "OK", Body.substr(0, Body.size() / 2),
                   Body.size());
      return;
    }
    sendResponse(Client, 200, "OK", Body, Body.size());
    return;
  }
  if (Method == "PUT") {
    size_t HdrEnd = Raw.find("\r\n\r\n");
    std::string Body = Raw.substr(HdrEnd + 4);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Entries[Path] = std::move(Body); // one-step swap: never torn
    }
    sendResponse(Client, 201, "Created", "", 0);
    return;
  }
  sendResponse(Client, 405, "Method Not Allowed", "", 0);
}

#else // _WIN32

void TestCacheServer::serveLoop() {}
void TestCacheServer::handleConnection(int) {}

#endif
