//===- cache/HttpBackend.cpp - Remote HTTP action-cache backend -----------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "cache/HttpBackend.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#ifndef _WIN32
#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace nadroid;
using namespace nadroid::cache;
using Clock = std::chrono::steady_clock;

namespace {

#ifndef _WIN32

/// RAII socket: every early return below must close, and there are many.
struct Fd {
  int Raw = -1;
  ~Fd() {
    if (Raw >= 0)
      ::close(Raw);
  }
};

/// Milliseconds left before \p Deadline; <= 0 means it passed.
long msLeft(Clock::time_point Deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Deadline -
                                                               Clock::now())
      .count();
}

/// Non-blocking connect bounded by \p Deadline. The classic dance:
/// O_NONBLOCK, connect, poll for writability, then read SO_ERROR —
/// a plain blocking connect to a dead host would wait out the kernel's
/// SYN retries (minutes), which is exactly the stall this backend
/// promises not to have.
bool connectDeadline(int Sock, const sockaddr *Addr, socklen_t Len,
                     Clock::time_point Deadline) {
  int Flags = ::fcntl(Sock, F_GETFL, 0);
  if (Flags < 0 || ::fcntl(Sock, F_SETFL, Flags | O_NONBLOCK) < 0)
    return false;
  if (::connect(Sock, Addr, Len) == 0)
    return true;
  if (errno != EINPROGRESS)
    return false;
  pollfd P{Sock, POLLOUT, 0};
  long Left = msLeft(Deadline);
  if (Left <= 0 || ::poll(&P, 1, static_cast<int>(Left)) <= 0)
    return false;
  int Err = 0;
  socklen_t ErrLen = sizeof(Err);
  return ::getsockopt(Sock, SOL_SOCKET, SO_ERROR, &Err, &ErrLen) == 0 &&
         Err == 0;
}

/// Sends all of \p Data before \p Deadline (the socket is non-blocking
/// after connectDeadline, so short writes and EAGAIN are routine).
bool sendAll(int Sock, const std::string &Data, Clock::time_point Deadline) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Sock, Data.data() + Off, Data.size() - Off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                  errno == EINTR)) {
      pollfd P{Sock, POLLOUT, 0};
      long Left = msLeft(Deadline);
      if (Left <= 0 || ::poll(&P, 1, static_cast<int>(Left)) <= 0)
        return false;
      continue;
    }
    return false;
  }
  return true;
}

/// Reads until EOF (the request said Connection: close) or \p Deadline.
/// False only on the deadline or a read error — an early EOF is the
/// *parser's* problem (it shows up as a truncated body).
bool recvAll(int Sock, std::string &Out, Clock::time_point Deadline) {
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Sock, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Out.append(Buf, static_cast<size_t>(N));
      // A response an adversarial or broken server pads forever must
      // not balloon memory; entries are single lines, so 16 MiB is
      // already absurd.
      if (Out.size() > (16u << 20))
        return false;
      continue;
    }
    if (N == 0)
      return true;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      pollfd P{Sock, POLLIN, 0};
      long Left = msLeft(Deadline);
      if (Left <= 0 || ::poll(&P, 1, static_cast<int>(Left)) <= 0)
        return false;
      continue;
    }
    return false;
  }
}

/// Parses an HTTP/1.1 response: status code out of the status line, the
/// body after the first blank line. When Content-Length is present the
/// body must be at least that long (a connection cut mid-body is a
/// truncation, not a short entry) and is trimmed to exactly it.
bool parseResponse(const std::string &Raw, int &Status, std::string &Body) {
  size_t LineEnd = Raw.find("\r\n");
  if (LineEnd == std::string::npos)
    return false;
  std::string StatusLine = Raw.substr(0, LineEnd);
  if (StatusLine.compare(0, 5, "HTTP/") != 0)
    return false;
  size_t Sp = StatusLine.find(' ');
  if (Sp == std::string::npos || Sp + 4 > StatusLine.size())
    return false;
  unsigned long long Code = 0;
  if (!parseUnsigned(StatusLine.substr(Sp + 1, 3).c_str(), Code))
    return false;
  Status = static_cast<int>(Code);

  size_t HdrEnd = Raw.find("\r\n\r\n");
  if (HdrEnd == std::string::npos)
    return false;
  std::string Headers = Raw.substr(0, HdrEnd);
  Body = Raw.substr(HdrEnd + 4);

  // Case-insensitive Content-Length scan over the header block.
  std::string Lower = Headers;
  for (char &C : Lower)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  size_t Cl = Lower.find("content-length:");
  if (Cl != std::string::npos) {
    size_t ValStart = Cl + std::strlen("content-length:");
    size_t ValEnd = Lower.find("\r\n", ValStart);
    std::string Val = Headers.substr(
        ValStart, (ValEnd == std::string::npos ? Headers.size() : ValEnd) -
                      ValStart);
    size_t B = Val.find_first_not_of(" \t");
    size_t E = Val.find_last_not_of(" \t");
    if (B == std::string::npos)
      return false;
    unsigned long long Len = 0;
    if (!parseUnsigned(Val.substr(B, E - B + 1).c_str(), Len))
      return false;
    if (Body.size() < Len)
      return false; // truncated mid-body
    Body.resize(static_cast<size_t>(Len));
  }
  return true;
}

#endif // !_WIN32

} // namespace

bool HttpCacheBackend::parseUrl(const std::string &Url, std::string &Host,
                                unsigned &Port, std::string &Prefix) {
  const std::string Scheme = "http://";
  if (Url.compare(0, Scheme.size(), Scheme) != 0)
    return false;
  std::string Rest = Url.substr(Scheme.size());
  size_t Slash = Rest.find('/');
  std::string HostPort = Rest.substr(0, Slash);
  Prefix = Slash == std::string::npos ? "" : Rest.substr(Slash);
  while (!Prefix.empty() && Prefix.back() == '/')
    Prefix.pop_back();
  size_t Colon = HostPort.rfind(':');
  Port = 80;
  if (Colon != std::string::npos) {
    unsigned long long P = 0;
    if (!parseUnsigned(HostPort.substr(Colon + 1).c_str(), P) || P < 1 ||
        P > 65535)
      return false;
    Port = static_cast<unsigned>(P);
    HostPort.resize(Colon);
  }
  Host = HostPort;
  return !Host.empty();
}

HttpCacheBackend::HttpCacheBackend(const std::string &Url) : Url(Url) {
  Valid = parseUrl(Url, Host, Port, Prefix);
  if (const char *E = std::getenv("NADROID_CACHE_TIMEOUT_MS")) {
    unsigned long long Ms = 0;
    if (parseUnsigned(E, Ms) && Ms >= 1 && Ms <= 600000)
      TimeoutMs = static_cast<long>(Ms);
  }
}

std::string HttpCacheBackend::objectPath(const std::string &KeyHex) const {
  return Prefix + "/" + KeyHex.substr(0, 2) + "/" + KeyHex;
}

bool HttpCacheBackend::exchange(const std::string &Request, int &Status,
                                std::string &Body) {
#ifdef _WIN32
  (void)Request;
  (void)Status;
  (void)Body;
  return false;
#else
  auto Deadline = Clock::now() + std::chrono::milliseconds(TimeoutMs);

  // Numeric hosts skip the resolver; anything else goes through
  // getaddrinfo with AI_NUMERICSERV (the port is already a number).
  addrinfo Hints{};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  if (::getaddrinfo(Host.c_str(), std::to_string(Port).c_str(), &Hints,
                    &Res) != 0 ||
      !Res)
    return false;

  Fd Sock;
  Sock.Raw = ::socket(Res->ai_family, Res->ai_socktype, Res->ai_protocol);
  bool Ok = Sock.Raw >= 0 &&
            connectDeadline(Sock.Raw, Res->ai_addr,
                            static_cast<socklen_t>(Res->ai_addrlen),
                            Deadline);
  ::freeaddrinfo(Res);
  if (!Ok)
    return false;

  if (!sendAll(Sock.Raw, Request, Deadline))
    return false;
  std::string Raw;
  if (!recvAll(Sock.Raw, Raw, Deadline))
    return false;
  return parseResponse(Raw, Status, Body);
#endif
}

bool HttpCacheBackend::lookup(const std::string &KeyHex,
                              std::string &EntryLine) {
  if (!Valid) {
    countFailure();
    return false;
  }
  std::ostringstream Req;
  Req << "GET " << objectPath(KeyHex) << " HTTP/1.1\r\n"
      << "Host: " << Host << ":" << Port << "\r\n"
      << "Connection: close\r\n\r\n";
  int Status = 0;
  std::string Body;
  if (!exchange(Req.str(), Status, Body)) {
    countFailure();
    return false;
  }
  if (Status == 404)
    return false; // clean miss: the cache is healthy, the key is new
  if (Status != 200) {
    countFailure();
    return false;
  }
  // Entries are single lines; the dir backend's reader getline-trims
  // the trailing newline, so trim here too for byte-parity.
  while (!Body.empty() && (Body.back() == '\n' || Body.back() == '\r'))
    Body.pop_back();
  EntryLine = std::move(Body);
  return true;
}

bool HttpCacheBackend::store(const std::string &KeyHex,
                             const std::string &EntryLine) {
  if (!Valid) {
    countFailure();
    return false;
  }
  std::ostringstream Req;
  Req << "PUT " << objectPath(KeyHex) << " HTTP/1.1\r\n"
      << "Host: " << Host << ":" << Port << "\r\n"
      << "Content-Length: " << EntryLine.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << EntryLine;
  int Status = 0;
  std::string Body;
  if (!exchange(Req.str(), Status, Body)) {
    countFailure();
    return false;
  }
  if (Status < 200 || Status > 299) {
    countFailure();
    return false;
  }
  return true;
}
