//===- cache/ResultCache.cpp - Content-addressed result store -------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "cache/ResultCache.h"

#include "support/Sha256.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

using namespace nadroid;
using namespace nadroid::cache;
namespace fs = std::filesystem;

namespace {

/// Folds one length-prefixed component into the digest. The prefix is a
/// fixed-width 8-byte big-endian length, so "ab" + "c" and "a" + "bc"
/// hash differently.
void foldComponent(support::Sha256 &H, std::string_view Part) {
  uint8_t Len[8];
  uint64_t N = Part.size();
  for (int I = 0; I < 8; ++I)
    Len[I] = static_cast<uint8_t>(N >> (56 - 8 * I));
  H.update(Len, sizeof(Len));
  H.update(Part);
}

} // namespace

std::string cache::resultCacheKey(std::string_view CanonicalAir,
                                  std::string_view OptionsFingerprint,
                                  unsigned Schema) {
  support::Sha256 H;
  foldComponent(H, CanonicalAir);
  foldComponent(H, OptionsFingerprint);
  foldComponent(H, "schema=" + std::to_string(Schema));
  return H.finalHex();
}

std::string cache::serveResponseKey(std::string_view RawAirBytes,
                                    std::string_view OptionsFingerprint,
                                    std::string_view RequestSignature,
                                    unsigned Schema) {
  support::Sha256 H;
  foldComponent(H, RawAirBytes);
  foldComponent(H, OptionsFingerprint);
  foldComponent(H, RequestSignature);
  foldComponent(H, "serve-schema=" + std::to_string(Schema));
  return H.finalHex();
}

std::string ResultCache::entryPath(const std::string &KeyHex) const {
  return Dir + "/" + KeyHex.substr(0, 2) + "/" + KeyHex + ".json";
}

bool ResultCache::lookup(const std::string &KeyHex,
                         std::string &EntryLine) const {
  if (!enabled())
    return false;
  std::ifstream In(entryPath(KeyHex));
  if (!In)
    return false;
  return static_cast<bool>(std::getline(In, EntryLine));
}

bool ResultCache::store(const std::string &KeyHex,
                        const std::string &EntryLine) const {
  if (!enabled())
    return false;
  fs::path Final = entryPath(KeyHex);
  std::error_code Ec;
  fs::create_directories(Final.parent_path(), Ec);
  if (Ec)
    return false;

  // Unique within this process and across processes: pid + a process-wide
  // counter. Collisions with a stale temp file from a dead process are
  // harmless — the write truncates it.
  static std::atomic<unsigned> Seq{0};
#ifdef _WIN32
  long Pid = _getpid();
#else
  long Pid = getpid();
#endif
  fs::path Tmp = Final;
  Tmp += ".tmp." + std::to_string(Pid) + "." +
         std::to_string(Seq.fetch_add(1, std::memory_order_relaxed));

  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return false;
    Out << EntryLine << "\n";
    Out.flush();
    if (!Out.good()) {
      Out.close();
      fs::remove(Tmp, Ec);
      return false;
    }
  }
  // The publish point: rename is atomic, so a concurrent reader sees the
  // old entry, the new entry, or nothing — never a torn write.
  fs::rename(Tmp, Final, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return false;
  }
  return true;
}
