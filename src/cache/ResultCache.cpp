//===- cache/ResultCache.cpp - Content-addressed result store -------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "cache/ResultCache.h"

#include "cache/CacheBackend.h"
#include "cache/HttpBackend.h"
#include "support/Sha256.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

using namespace nadroid;
using namespace nadroid::cache;
namespace fs = std::filesystem;

namespace {

/// Folds one length-prefixed component into the digest. The prefix is a
/// fixed-width 8-byte big-endian length, so "ab" + "c" and "a" + "bc"
/// hash differently.
void foldComponent(support::Sha256 &H, std::string_view Part) {
  uint8_t Len[8];
  uint64_t N = Part.size();
  for (int I = 0; I < 8; ++I)
    Len[I] = static_cast<uint8_t>(N >> (56 - 8 * I));
  H.update(Len, sizeof(Len));
  H.update(Part);
}

/// The original sharded-directory layout, now one backend among several:
/// `<dir>/<2-hex>/<key>.json` entries, atomic temp+rename stores safe
/// under --jobs N and concurrent processes.
class DirCacheBackend : public CacheBackend {
public:
  explicit DirCacheBackend(std::string Dir) : Dir(std::move(Dir)) {}

  std::string entryPath(const std::string &KeyHex) const {
    return Dir + "/" + KeyHex.substr(0, 2) + "/" + KeyHex + ".json";
  }

  bool lookup(const std::string &KeyHex, std::string &EntryLine) override {
    std::ifstream In(entryPath(KeyHex));
    if (!In)
      return false; // clean miss: an absent entry is the cache working
    if (!std::getline(In, EntryLine)) {
      countFailure(); // the file exists but cannot be read: broken
      return false;
    }
    return true;
  }

  bool store(const std::string &KeyHex, const std::string &EntryLine)
      override {
    fs::path Final = entryPath(KeyHex);
    std::error_code Ec;
    fs::create_directories(Final.parent_path(), Ec);
    if (Ec) {
      countFailure();
      return false;
    }

    // Unique within this process and across processes: pid + a
    // process-wide counter. Collisions with a stale temp file from a
    // dead process are harmless — the write truncates it.
    static std::atomic<unsigned> Seq{0};
#ifdef _WIN32
    long Pid = _getpid();
#else
    long Pid = getpid();
#endif
    fs::path Tmp = Final;
    Tmp += ".tmp." + std::to_string(Pid) + "." +
           std::to_string(Seq.fetch_add(1, std::memory_order_relaxed));

    {
      std::ofstream Out(Tmp, std::ios::trunc);
      if (!Out) {
        countFailure();
        return false;
      }
      Out << EntryLine << "\n";
      Out.flush();
      if (!Out.good()) {
        Out.close();
        fs::remove(Tmp, Ec);
        countFailure();
        return false;
      }
    }
    // The publish point: rename is atomic, so a concurrent reader sees
    // the old entry, the new entry, or nothing — never a torn write.
    fs::rename(Tmp, Final, Ec);
    if (Ec) {
      fs::remove(Tmp, Ec);
      countFailure();
      return false;
    }
    return true;
  }

  const char *scheme() const override { return "dir"; }

private:
  std::string Dir;
};

/// Strips the optional explicit `dir://` scheme off a directory spec.
std::string dirPathOf(const std::string &Spec) {
  const std::string Scheme = "dir://";
  if (Spec.compare(0, Scheme.size(), Scheme) == 0)
    return Spec.substr(Scheme.size());
  return Spec;
}

bool isHttpSpec(const std::string &Spec) {
  return Spec.compare(0, 7, "http://") == 0;
}

std::unique_ptr<CacheBackend> makeBackend(const std::string &Spec) {
  if (Spec.empty())
    return nullptr;
  if (isHttpSpec(Spec))
    return std::make_unique<HttpCacheBackend>(Spec);
  return std::make_unique<DirCacheBackend>(dirPathOf(Spec));
}

} // namespace

std::string cache::resultCacheKey(std::string_view CanonicalAir,
                                  std::string_view OptionsFingerprint,
                                  unsigned Schema) {
  support::Sha256 H;
  foldComponent(H, CanonicalAir);
  foldComponent(H, OptionsFingerprint);
  foldComponent(H, "schema=" + std::to_string(Schema));
  return H.finalHex();
}

std::string cache::serveResponseKey(std::string_view RawAirBytes,
                                    std::string_view OptionsFingerprint,
                                    std::string_view RequestSignature,
                                    unsigned Schema) {
  support::Sha256 H;
  foldComponent(H, RawAirBytes);
  foldComponent(H, OptionsFingerprint);
  foldComponent(H, RequestSignature);
  foldComponent(H, "serve-schema=" + std::to_string(Schema));
  return H.finalHex();
}

bool cache::validateCacheSpec(const std::string &Spec, std::string &Error) {
  if (Spec.empty())
    return true;
  if (isHttpSpec(Spec)) {
    std::string Host, Prefix;
    unsigned Port = 0;
    if (!HttpCacheBackend::parseUrl(Spec, Host, Port, Prefix)) {
      Error = "'" + Spec +
              "' is not a valid cache URL (want http://host[:port][/prefix])";
      return false;
    }
    return true;
  }
  if (dirPathOf(Spec).empty()) {
    Error = "'" + Spec + "' names no directory";
    return false;
  }
  return true;
}

ResultCache::ResultCache(std::string SpecIn)
    : Spec(std::move(SpecIn)), Backend(makeBackend(Spec)) {}

ResultCache::~ResultCache() = default;
ResultCache::ResultCache(ResultCache &&) noexcept = default;
ResultCache &ResultCache::operator=(ResultCache &&) noexcept = default;

bool ResultCache::lookup(const std::string &KeyHex,
                         std::string &EntryLine) const {
  return Backend && Backend->lookup(KeyHex, EntryLine);
}

bool ResultCache::store(const std::string &KeyHex,
                        const std::string &EntryLine) const {
  return Backend && Backend->store(KeyHex, EntryLine);
}

std::string ResultCache::entryPath(const std::string &KeyHex) const {
  if (!Backend || isHttpSpec(Spec))
    return "";
  return static_cast<const DirCacheBackend &>(*Backend).entryPath(KeyHex);
}

const char *ResultCache::backendScheme() const {
  return Backend ? Backend->scheme() : "";
}

unsigned ResultCache::transportFailures() const {
  return Backend ? Backend->transportFailures() : 0;
}
