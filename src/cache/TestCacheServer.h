//===- cache/TestCacheServer.h - In-memory HTTP cache server ----*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny HTTP object store speaking exactly the protocol HttpCacheBackend
/// expects — GET returns a stored body or 404, PUT installs one whole —
/// for tests and CI, where a real cache host would be a dependency and a
/// flake. It listens on an ephemeral 127.0.0.1 port (no fixed-port
/// collisions between parallel test shards), keeps entries in a mutexed
/// map (a PUT swaps the value in one step, so GETs see old or new,
/// never torn — the atomicity the backend contract demands), and serves
/// connections serially on one background thread: requests are one line
/// of payload each, so queueing on the listen backlog is cheaper than a
/// thread per connection and keeps the server trivially race-free.
///
/// Fault injection, for the degradation tests: a FailMode makes every
/// subsequent request misbehave in one specific way — 500, a body cut
/// off mid-entry, or a stall past the client's timeout — so each failure
/// path in the backend can be pinned to "counted miss, report bytes
/// unchanged". The standalone `nadroid-cache-server` binary wraps this
/// class for CI jobs and manual fleets.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_CACHE_TESTCACHESERVER_H
#define NADROID_CACHE_TESTCACHESERVER_H

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace nadroid::cache {

class TestCacheServer {
public:
  enum class FailMode {
    None,         ///< behave: 200/404/PUT-ok
    Http500,      ///< every request answers 500
    TruncateBody, ///< GET hits advertise the full length, send half
    Stall,        ///< accept, read the request, never respond
  };

  TestCacheServer();
  ~TestCacheServer();

  TestCacheServer(const TestCacheServer &) = delete;
  TestCacheServer &operator=(const TestCacheServer &) = delete;

  /// False when the listening socket could not be set up; port() is 0.
  bool running() const { return Port != 0; }
  unsigned port() const { return Port; }

  /// `http://127.0.0.1:<port>` — ready to hand to --cache-dir.
  std::string url() const;

  void setFailMode(FailMode M) { Mode.store(M); }

  /// Entries currently stored (all paths).
  size_t entryCount() const;
  /// Requests served since start, by verb (stall/500 responses count).
  unsigned getCount() const { return Gets.load(); }
  unsigned putCount() const { return Puts.load(); }

  /// Stops accepting and joins the thread. Idempotent; the destructor
  /// calls it.
  void stop();

private:
  void serveLoop();
  void handleConnection(int Client);

  int ListenFd = -1;
  unsigned Port = 0;
  std::thread Thread;
  std::atomic<bool> Stopping{false};
  std::atomic<FailMode> Mode{FailMode::None};
  std::atomic<unsigned> Gets{0}, Puts{0};

  mutable std::mutex Mu;
  std::map<std::string, std::string> Entries;
  /// Stall mode parks handlers on its own mutex so a stalled connection
  /// never holds the entry map against entryCount().
  std::mutex StallMu;
  std::condition_variable StallCv;
};

} // namespace nadroid::cache

#endif // NADROID_CACHE_TESTCACHESERVER_H
