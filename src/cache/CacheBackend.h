//===- cache/CacheBackend.h - Pluggable result-cache transport --*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport protocol behind ResultCache — Bazel-action-cache
/// semantics reduced to two verbs:
///
///   lookup(key) -> entry | miss      (content-addressed GET)
///   store(key, entry)   -> ok | drop (content-addressed PUT, atomic)
///
/// Keys are 64-hex SHA-256 strings; entries are opaque single lines the
/// report layer serializes and validates. A backend never interprets
/// either. The contract every backend must honor:
///
///  * **Atomicity.** A concurrent reader sees a whole entry or none —
///    never a torn write. The dir backend gets this from POSIX rename;
///    the HTTP backend from the server publishing bodies whole.
///  * **Failure degrades to a miss.** Unreachable host, refused
///    connection, timeout, 5xx, truncated body, unwritable directory,
///    ENOSPC — every one returns false and the caller re-analyzes. A
///    cache can make a batch slower, never wronger, and never dead.
///  * **Failures are counted.** Clean misses (absent key, 404) are the
///    cache working; transport and status failures are the cache
///    *broken*, and `transportFailures()` keeps the two distinguishable
///    so a shard pointed at a dead cache host shows up in the batch
///    footer instead of masquerading as a cold corpus.
///  * **Bounded waiting.** A backend call returns within its configured
///    timeout. A dead cache host costs a shard O(apps × timeout), not a
///    hang.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_CACHE_CACHEBACKEND_H
#define NADROID_CACHE_CACHEBACKEND_H

#include <atomic>
#include <string>

namespace nadroid::cache {

class CacheBackend {
public:
  virtual ~CacheBackend() = default;

  /// Reads the entry under \p KeyHex into \p EntryLine. False on a clean
  /// miss *and* on any failure (the caller cannot tell — it re-analyzes
  /// either way; the distinction lives in transportFailures()).
  virtual bool lookup(const std::string &KeyHex,
                      std::string &EntryLine) = 0;

  /// Installs \p EntryLine under \p KeyHex atomically. False on any
  /// failure — callers treat a failed store as "cache full/broken",
  /// never fatal.
  virtual bool store(const std::string &KeyHex,
                     const std::string &EntryLine) = 0;

  /// The URL scheme this backend answers to ("dir", "http") — the label
  /// the batch JSON and footer report per-backend counters under.
  virtual const char *scheme() const = 0;

  /// Transport/status failures since construction: refused connections,
  /// timeouts, non-404 error statuses, truncated bodies, I/O errors.
  /// Clean misses are not failures. Thread-safe (batch stores run on
  /// pool lanes).
  unsigned transportFailures() const {
    return Failures.load(std::memory_order_relaxed);
  }

protected:
  void countFailure() { Failures.fetch_add(1, std::memory_order_relaxed); }

private:
  std::atomic<unsigned> Failures{0};
};

} // namespace nadroid::cache

#endif // NADROID_CACHE_CACHEBACKEND_H
