//===- cache/ServerMain.cpp - nadroid-cache-server entry point ------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The standalone wrapper around TestCacheServer for CI and manual
// fleets: an in-memory HTTP action cache that shard jobs point their
// `--cache-dir http://...` at.
//
//   nadroid-cache-server [--port-file PATH] [--fail-mode MODE]
//
// The server binds an ephemeral 127.0.0.1 port, prints
// `listening on http://127.0.0.1:PORT` on stdout (flushed, so a shell
// can `read` it), optionally writes the bare URL to --port-file (what a
// CI step polls for), and runs until SIGINT/SIGTERM. --fail-mode
// {none,500,truncate,stall} starts it misbehaving, for driving the
// degradation paths from shell tests.
//
//===----------------------------------------------------------------------===//

#include "cache/TestCacheServer.h"

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace nadroid;

namespace {

volatile std::sig_atomic_t Interrupted = 0;
void onSignal(int) { Interrupted = 1; }

} // namespace

int main(int argc, char **argv) {
  std::string PortFile;
  cache::TestCacheServer::FailMode Mode =
      cache::TestCacheServer::FailMode::None;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--port-file") && I + 1 < argc) {
      PortFile = argv[++I];
    } else if (!std::strcmp(argv[I], "--fail-mode") && I + 1 < argc) {
      std::string M = argv[++I];
      if (M == "none")
        Mode = cache::TestCacheServer::FailMode::None;
      else if (M == "500")
        Mode = cache::TestCacheServer::FailMode::Http500;
      else if (M == "truncate")
        Mode = cache::TestCacheServer::FailMode::TruncateBody;
      else if (M == "stall")
        Mode = cache::TestCacheServer::FailMode::Stall;
      else {
        std::cerr << "error: --fail-mode: '" << M
                  << "' is not one of none|500|truncate|stall\n";
        return 2;
      }
    } else {
      std::cerr << "usage: nadroid-cache-server [--port-file PATH] "
                   "[--fail-mode none|500|truncate|stall]\n";
      return 2;
    }
  }

  cache::TestCacheServer Server;
  if (!Server.running()) {
    std::cerr << "error: cannot bind a loopback port\n";
    return 1;
  }
  Server.setFailMode(Mode);
  std::cout << "listening on " << Server.url() << std::endl;
  if (!PortFile.empty()) {
    // Write to a temp name and rename so a polling reader never sees a
    // half-written URL.
    std::string Tmp = PortFile + ".tmp";
    {
      std::ofstream Out(Tmp, std::ios::trunc);
      Out << Server.url() << "\n";
    }
    std::rename(Tmp.c_str(), PortFile.c_str());
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
#ifndef _WIN32
  while (!Interrupted)
    ::pause();
#endif
  Server.stop();
  return 0;
}
