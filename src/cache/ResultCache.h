//===- cache/ResultCache.h - Content-addressed result store -----*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, content-addressed store for per-app batch results —
/// the same trick compilation caches (ccache, Bazel's action cache)
/// play, applicable here because the pipeline is a pure function of
/// (app source, analysis options, analyzer version). The key is the
/// SHA-256 of exactly those three components:
///
///   key = SHA256(len(canonical .air bytes) || canonical .air bytes ||
///                len(options fingerprint)  || options fingerprint  ||
///                len(schema version)       || schema version)
///
/// *Canonical* bytes are the printed form of the parsed program
/// (`frontend::canonicalProgramBytes`), so edits the parser does not
/// see — whitespace, comments, formatting — still hit. The options
/// fingerprint (`pipeline::PipelineOptions::fingerprint()`) covers
/// every knob that can change a result; the schema version invalidates
/// the whole cache whenever the entry format or the analyzer's
/// semantics change. Length-prefixing keeps component boundaries
/// unambiguous (no crafted canonical text can impersonate a different
/// fingerprint split).
///
/// This layer is deliberately dumb: keys in, opaque single-line entries
/// out. What an entry *means* (the serialized BatchApp row) is the
/// report layer's business — `report::renderAppResult` /
/// `parseAppResult` — which keeps the dependency arrow pointing one way
/// (report → cache, never back).
///
/// Concurrency: `store` writes to a unique temp file in the entry's
/// own directory and renames it into place. POSIX rename is atomic, so
/// concurrent stores of the same key — from `--jobs N` lanes or from
/// separate nadroid processes sharing a cache directory — each install
/// a complete entry; last writer wins and every reader sees either a
/// whole entry or none. All failures (unwritable directory, ENOSPC,
/// corrupt entry) are soft: the cache degrades to a miss, never to an
/// error.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_CACHE_RESULTCACHE_H
#define NADROID_CACHE_RESULTCACHE_H

#include <string>
#include <string_view>

namespace nadroid::cache {

/// Bump on ANY change to the entry format or to analyzer semantics that
/// old entries would misrepresent. Every bump orphans all prior entries
/// (different keys), which is the intended, crash-proof invalidation.
/// History: 2 = per-filter-kind timing fields in the entry scalars;
/// 3 = lint finding counts and the typestate phase timing.
inline constexpr unsigned SchemaVersion = 3;

/// The cache key for one (app, options) pair: 64 lowercase hex chars.
/// \p CanonicalAir must be the *printed* program, not raw file bytes.
std::string resultCacheKey(std::string_view CanonicalAir,
                           std::string_view OptionsFingerprint,
                           unsigned Schema = SchemaVersion);

/// Bump on ANY change to the serve daemon's response entry format or to
/// anything that changes response bytes for unchanged inputs. Separate
/// from SchemaVersion: batch rows and serve responses evolve
/// independently, and sharing one counter would orphan both caches on
/// either's change.
inline constexpr unsigned ServeSchemaVersion = 1;

/// The key for one serve-daemon response — the L2 behind the session
/// table. Keyed on RAW file bytes, not canonical bytes: a response
/// embeds file:line:col locations, so two formattings of the same
/// program need different entries even though their analysis results
/// agree. \p RequestSignature is the protocol-level request identity
/// (verb + rendering flags), which selects among the several responses
/// one (file, options) pair can produce.
std::string serveResponseKey(std::string_view RawAirBytes,
                             std::string_view OptionsFingerprint,
                             std::string_view RequestSignature,
                             unsigned Schema = ServeSchemaVersion);

/// One cache directory. Cheap to construct; creates nothing until the
/// first store.
class ResultCache {
public:
  explicit ResultCache(std::string Dir) : Dir(std::move(Dir)) {}

  /// True when a directory was configured (the object is inert otherwise).
  bool enabled() const { return !Dir.empty(); }

  /// Reads the entry for \p KeyHex into \p EntryLine. Returns false on
  /// absence or any read failure. The caller still has to validate the
  /// line (parseAppResult refuses truncated or alien content) — a
  /// corrupted entry must degrade to a miss, not a crash.
  bool lookup(const std::string &KeyHex, std::string &EntryLine) const;

  /// Atomically installs \p EntryLine under \p KeyHex (temp file +
  /// rename; see the file comment). Returns false on any I/O failure —
  /// callers treat a failed store as "cache full/broken", never fatal.
  bool store(const std::string &KeyHex, const std::string &EntryLine) const;

  /// Where the entry for \p KeyHex lives: `<dir>/<first 2 hex>/<key>.json`
  /// — two-level sharding keeps huge caches off single-directory limits.
  std::string entryPath(const std::string &KeyHex) const;

  const std::string &directory() const { return Dir; }

private:
  std::string Dir;
};

} // namespace nadroid::cache

#endif // NADROID_CACHE_RESULTCACHE_H
