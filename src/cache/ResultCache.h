//===- cache/ResultCache.h - Content-addressed result store -----*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, content-addressed store for per-app batch results —
/// the same trick compilation caches (ccache, Bazel's action cache)
/// play, applicable here because the pipeline is a pure function of
/// (app source, analysis options, analyzer version). The key is the
/// SHA-256 of exactly those three components:
///
///   key = SHA256(len(canonical .air bytes) || canonical .air bytes ||
///                len(options fingerprint)  || options fingerprint  ||
///                len(schema version)       || schema version)
///
/// *Canonical* bytes are the printed form of the parsed program
/// (`frontend::canonicalProgramBytes`), so edits the parser does not
/// see — whitespace, comments, formatting — still hit. The options
/// fingerprint (`pipeline::PipelineOptions::fingerprint()`) covers
/// every knob that can change a result; the schema version invalidates
/// the whole cache whenever the entry format or the analyzer's
/// semantics change. Length-prefixing keeps component boundaries
/// unambiguous (no crafted canonical text can impersonate a different
/// fingerprint split).
///
/// This layer is deliberately dumb: keys in, opaque single-line entries
/// out. What an entry *means* (the serialized BatchApp row) is the
/// report layer's business — `report::renderAppResult` /
/// `parseAppResult` — which keeps the dependency arrow pointing one way
/// (report → cache, never back).
///
/// Where entries *live* is the CacheBackend's business (CacheBackend.h).
/// The spec string selects the transport:
///
///   /path/to/dir          local sharded directory (back-compat)
///   dir:///path/to/dir    the same, spelled explicitly
///   http://host:port/pfx  a remote action cache (HttpBackend.h) —
///                         what lets N shard machines share one warm set
///
/// Whatever the transport, all failures are soft: the cache degrades to
/// a miss, never to an error, and transport failures are counted so a
/// dead cache host is visible in the batch footer.
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_CACHE_RESULTCACHE_H
#define NADROID_CACHE_RESULTCACHE_H

#include <memory>
#include <string>
#include <string_view>

namespace nadroid::cache {

class CacheBackend;

/// Bump on ANY change to the entry format or to analyzer semantics that
/// old entries would misrepresent. Every bump orphans all prior entries
/// (different keys), which is the intended, crash-proof invalidation.
/// History: 2 = per-filter-kind timing fields in the entry scalars;
/// 3 = lint finding counts and the typestate phase timing.
inline constexpr unsigned SchemaVersion = 3;

/// The cache key for one (app, options) pair: 64 lowercase hex chars.
/// \p CanonicalAir must be the *printed* program, not raw file bytes.
std::string resultCacheKey(std::string_view CanonicalAir,
                           std::string_view OptionsFingerprint,
                           unsigned Schema = SchemaVersion);

/// Bump on ANY change to the serve daemon's response entry format or to
/// anything that changes response bytes for unchanged inputs. Separate
/// from SchemaVersion: batch rows and serve responses evolve
/// independently, and sharing one counter would orphan both caches on
/// either's change.
inline constexpr unsigned ServeSchemaVersion = 1;

/// The key for one serve-daemon response — the L2 behind the session
/// table. Keyed on RAW file bytes, not canonical bytes: a response
/// embeds file:line:col locations, so two formattings of the same
/// program need different entries even though their analysis results
/// agree. \p RequestSignature is the protocol-level request identity
/// (verb + rendering flags), which selects among the several responses
/// one (file, options) pair can produce.
std::string serveResponseKey(std::string_view RawAirBytes,
                             std::string_view OptionsFingerprint,
                             std::string_view RequestSignature,
                             unsigned Schema = ServeSchemaVersion);

/// Validates a --cache-dir spec without constructing a backend: true
/// for the empty spec, any dir path, and a well-formed http:// URL.
/// On false, \p Error names what is wrong — the driver turns it into a
/// CLI diagnostic instead of letting a typo'd URL fail silently on
/// every probe.
bool validateCacheSpec(const std::string &Spec, std::string &Error);

/// One result cache behind one backend. Cheap to construct; creates
/// nothing until the first store. Move-only (it owns the backend).
class ResultCache {
public:
  /// \p Spec as documented in the file comment; empty = disabled.
  explicit ResultCache(std::string Spec);
  ~ResultCache();
  ResultCache(ResultCache &&) noexcept;
  ResultCache &operator=(ResultCache &&) noexcept;

  /// True when a spec was configured (the object is inert otherwise).
  bool enabled() const { return Backend != nullptr; }

  /// Reads the entry for \p KeyHex into \p EntryLine. Returns false on
  /// absence or any read failure. The caller still has to validate the
  /// line (parseAppResult refuses truncated or alien content) — a
  /// corrupted entry must degrade to a miss, not a crash.
  bool lookup(const std::string &KeyHex, std::string &EntryLine) const;

  /// Atomically installs \p EntryLine under \p KeyHex. Returns false on
  /// any failure — callers treat a failed store as "cache full/broken",
  /// never fatal.
  bool store(const std::string &KeyHex, const std::string &EntryLine) const;

  /// Where the entry for \p KeyHex lives under the dir backend:
  /// `<dir>/<first 2 hex>/<key>.json` — two-level sharding keeps huge
  /// caches off single-directory limits. Empty for remote backends
  /// (entries have no local path).
  std::string entryPath(const std::string &KeyHex) const;

  /// The configured spec, verbatim (status lines, diagnostics).
  const std::string &directory() const { return Spec; }

  /// "dir", "http", or "" when disabled.
  const char *backendScheme() const;

  /// Transport/status failures so far (CacheBackend contract); 0 when
  /// disabled or healthy.
  unsigned transportFailures() const;

private:
  std::string Spec;
  std::unique_ptr<CacheBackend> Backend;
};

} // namespace nadroid::cache

#endif // NADROID_CACHE_RESULTCACHE_H
