//===- deva/Deva.h - DEvA baseline reimplementation -------------*- C++ -*-===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of DEvA (Safi et al., ESEC/FSE'15), the
/// state-of-the-art static "event anomaly" detector nAdroid compares
/// against (§2.3, §8.7). Faithful to its published limitations:
///
///  * Intra-class scope: read/write sets are computed per event callback
///    within one class group (a class plus its lexically-inner classes);
///    inter-class racy accesses are invisible — the paper's main DEvA
///    false-negative source.
///  * No thread model: native threads (Thread.run, doInBackground) are not
///    event handlers and are ignored entirely.
///  * No happens-before reasoning: onCreate/onDestroy and
///    connect/disconnect orderings are not consulted — the paper's main
///    DEvA false-positive source (Table 3's onDestroy frees).
///  * Unsound IG/IA: the if-guard and intra-allocation filters assume all
///    methods execute atomically, so they fire without any atomicity or
///    lockset evidence.
///  * Fragments: DEvA is purely class-based, so Fragment callbacks are
///    analyzed like any other — unlike nAdroid's modeling (§8.1), which
///    skips them (Table 3's Browser row).
///
//===----------------------------------------------------------------------===//

#ifndef NADROID_DEVA_DEVA_H
#define NADROID_DEVA_DEVA_H

#include "ir/Stmt.h"
#include "pipeline/AnalysisManager.h"

#include <vector>

namespace nadroid::deva {

/// One DEvA event anomaly (UAF form): a callback reads a field another
/// callback of the same class group nulls.
struct DevaWarning {
  const ir::Field *F = nullptr;
  ir::Method *UseCallback = nullptr;
  ir::Method *FreeCallback = nullptr;
  const ir::LoadStmt *Use = nullptr;   // representative site
  const ir::StoreStmt *Free = nullptr; // representative site
  /// DEvA marks a warning harmful when neither its (unsound) if-guard nor
  /// intra-allocation filter protects the use (§8.7).
  bool Harmful = false;
};

struct DevaResult {
  std::vector<DevaWarning> Warnings;

  std::vector<const DevaWarning *> harmful() const {
    std::vector<const DevaWarning *> Result;
    for (const DevaWarning &W : Warnings)
      if (W.Harmful)
        Result.push_back(&W);
    return Result;
  }
};

/// Runs the DEvA baseline over \p P.
DevaResult runDeva(const ir::Program &P);

/// Same through a caller's manager: the per-method guard/alloc facts
/// come from the shared caches, so a Table 3 run that also runs nAdroid
/// analyzes each method once, not twice.
DevaResult runDeva(pipeline::AnalysisManager &AM);

} // namespace nadroid::deva

#endif // NADROID_DEVA_DEVA_H
