//===- deva/Deva.cpp - DEvA baseline reimplementation --------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "deva/Deva.h"

#include "analysis/AllocFlow.h"
#include "analysis/Guards.h"
#include "android/Callbacks.h"
#include "ir/LocalInfo.h"

#include <algorithm>
#include <map>
#include <set>

using namespace nadroid;
using namespace nadroid::deva;
using namespace nadroid::ir;
using android::CallbackKind;

namespace {

/// DEvA classifies callbacks by name alone; Fragment callbacks count like
/// Activity callbacks (DEvA has no modeling gap there).
CallbackKind devaCallbackKind(const Clazz &C, const std::string &Name) {
  ClassKind Kind = C.kind();
  if (Kind == ClassKind::Fragment)
    Kind = ClassKind::Activity;
  return android::classifyCallback(Kind, Name);
}

/// Event handlers only: native thread bodies are not events.
bool isEventCallback(CallbackKind K) {
  switch (K) {
  case CallbackKind::None:
  case CallbackKind::ThreadRun:
  case CallbackKind::AsyncBackground:
    return false;
  default:
    return true;
  }
}

/// The lexical class group: a root class plus classes naming it (or a
/// member) as outer.
struct ClassGroup {
  Clazz *Root = nullptr;
  std::vector<Clazz *> Members;
  std::set<const Field *> Fields;
};

Clazz *groupRoot(Clazz *C) {
  while (C->outerClass())
    C = C->outerClass();
  return C;
}

std::vector<ClassGroup> buildGroups(const Program &P) {
  std::map<Clazz *, ClassGroup> ByRoot;
  std::vector<Clazz *> RootOrder;
  for (const auto &C : P.classes()) {
    Clazz *Root = groupRoot(C.get());
    auto [It, Inserted] = ByRoot.try_emplace(Root);
    if (Inserted) {
      It->second.Root = Root;
      RootOrder.push_back(Root);
    }
    It->second.Members.push_back(C.get());
    for (const auto &F : C->fields())
      It->second.Fields.insert(F.get());
  }
  std::vector<ClassGroup> Groups;
  for (Clazz *Root : RootOrder)
    Groups.push_back(std::move(ByRoot[Root]));
  return Groups;
}

/// Per-callback read/write-null sets over the group's fields, following
/// helper calls that stay within the group.
struct AccessSets {
  std::map<const Field *, const LoadStmt *> Reads;      // first read site
  std::map<const Field *, const StoreStmt *> NullWrites; // first free site
  /// Uses protected by DEvA's unsound IG/IA filters.
  std::set<const Field *> ProtectedReads;
};

class GroupAnalyzer {
public:
  GroupAnalyzer(pipeline::AnalysisManager &AM, const ClassGroup &G)
      : AM(AM), G(G) {
    for (Clazz *C : G.Members)
      InGroup.insert(C);
  }

  AccessSets analyzeCallback(Method *Cb) {
    AccessSets Sets;
    std::set<const Method *> Visited;
    visit(Cb, Sets, Visited);
    return Sets;
  }

private:
  pipeline::AnalysisManager &AM;
  const ClassGroup &G;
  std::set<const Clazz *> InGroup;

  void visit(Method *M, AccessSets &Sets,
             std::set<const Method *> &Visited) {
    if (!Visited.insert(M).second)
      return;
    const analysis::GuardAnalysis &Guards = AM.guards(*M);
    const analysis::AllocFlowResult &Alloc =
        AM.allocFlow(*M, /*TreatCallResultAsAlloc=*/false);

    forEachStmt(*M, [&](const Stmt &S) {
      if (const auto *Load = dyn_cast<LoadStmt>(&S)) {
        if (!G.Fields.count(Load->field()))
          return;
        Sets.Reads.try_emplace(Load->field(), Load);
        // DEvA's unsound IG/IA: any guard or dominating allocation
        // counts, atomicity unchecked.
        if (Guards.isGuarded(Load) || Alloc.ProtectedLoads.count(Load))
          Sets.ProtectedReads.insert(Load->field());
      } else if (const auto *Store = dyn_cast<StoreStmt>(&S)) {
        if (!Store->isNullStore() || !G.Fields.count(Store->field()))
          return;
        Sets.NullWrites.try_emplace(Store->field(), Store);
      } else if (const auto *Call = dyn_cast<CallStmt>(&S)) {
        // Follow helpers that stay inside the class group.
        LocalClassSet Recv = inferLocalClasses(*M, Call->recv());
        for (Clazz *C : Recv.Classes) {
          if (!InGroup.count(C))
            continue;
          if (Method *Target = C->findMethod(Call->callee()))
            visit(Target, Sets, Visited);
        }
      }
    });
  }
};

} // namespace

DevaResult deva::runDeva(const Program &P) {
  pipeline::AnalysisManager AM(P);
  return runDeva(AM);
}

DevaResult deva::runDeva(pipeline::AnalysisManager &AM) {
  const Program &P = AM.program();
  DevaResult Result;

  for (const ClassGroup &G : buildGroups(P)) {
    // Collect the group's event callbacks and their access sets.
    std::vector<std::pair<Method *, AccessSets>> Callbacks;
    GroupAnalyzer Analyzer(AM, G);
    for (Clazz *C : G.Members)
      for (const auto &M : C->methods())
        if (isEventCallback(devaCallbackKind(*C, M->name())))
          Callbacks.emplace_back(M.get(), Analyzer.analyzeCallback(M.get()));

    // Pair callbacks: a read in A vs a null-write in B (A != B).
    for (const auto &[UseCb, UseSets] : Callbacks) {
      for (const auto &[FreeCb, FreeSets] : Callbacks) {
        if (UseCb == FreeCb)
          continue;
        for (const auto &[F, UseSite] : UseSets.Reads) {
          auto It = FreeSets.NullWrites.find(F);
          if (It == FreeSets.NullWrites.end())
            continue;
          DevaWarning W;
          W.F = F;
          W.UseCallback = UseCb;
          W.FreeCallback = FreeCb;
          W.Use = UseSite;
          W.Free = It->second;
          W.Harmful = !UseSets.ProtectedReads.count(F);
          Result.Warnings.push_back(W);
        }
      }
    }
  }

  std::sort(Result.Warnings.begin(), Result.Warnings.end(),
            [](const DevaWarning &A, const DevaWarning &B) {
              if (A.Use->id() != B.Use->id())
                return A.Use->id() < B.Use->id();
              return A.Free->id() < B.Free->id();
            });
  return Result;
}
