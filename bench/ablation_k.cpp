//===- bench/ablation_k.cpp - Context-depth ablation (§8.5/§8.8) ------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The paper uses k=2 object sensitivity "for balancing precision and
// scalability" (§8.5) and notes the k-value "can be adjusted at the cost
// of precision" (§8.8). This ablation runs the full corpus at k = 1, 2,
// 3 and reports warning counts and pipeline outcomes: coarser contexts
// merge heap objects, which can only add (never remove) warnings.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "report/Nadroid.h"
#include "support/TableWriter.h"

#include <chrono>
#include <iostream>

using namespace nadroid;

int main() {
  TableWriter Table({"k", "Potential", "AfterSound", "AfterUnsound",
                     "Contexts", "Objects", "Solve(ms)"});

  for (unsigned K : {1u, 2u, 3u}) {
    uint64_t Potential = 0, Sound = 0, Unsound = 0, Ctxs = 0, Objs = 0;
    double SolveMs = 0;
    for (const corpus::Recipe &Recipe : corpus::allRecipes()) {
      corpus::CorpusApp App = corpus::buildApp(Recipe);
      report::NadroidOptions Opts;
      Opts.K = K;
      auto T0 = std::chrono::steady_clock::now();
      report::NadroidResult R = report::analyzeProgram(*App.Prog, Opts);
      SolveMs += std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
      Potential += R.warnings().size();
      Sound += R.Pipeline.RemainingAfterSound;
      Unsound += R.Pipeline.RemainingAfterUnsound;
      Ctxs += R.PTA->stats().get("pointsto.contexts");
      Objs += R.PTA->stats().get("pointsto.objects");
    }
    Table.addRow({TableWriter::cell(K), TableWriter::cell(Potential),
                  TableWriter::cell(Sound), TableWriter::cell(Unsound),
                  TableWriter::cell(Ctxs), TableWriter::cell(Objs),
                  TableWriter::cell(static_cast<long long>(SolveMs))});
  }

  std::cout << "Ablation: k-object-sensitivity depth over the 27-app "
               "corpus\n\n";
  Table.print(std::cout);
  std::cout << "\nk=1 merges allocation sites across receiver objects — "
               "more aliasing, more (false) warnings; beyond k=2 the "
               "corpus gains nothing, matching the paper's default.\n";
  return 0;
}
