//===- bench/scalability.cpp - Pipeline scalability curve -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// §8.8 discusses scalability: Chord handled >180K LOC and "if the
// execution time or scalability becomes an issue, the k-value can be
// adjusted at the cost of precision". This bench plots the reproduction's
// own curve: generated apps of growing size through the full pipeline,
// with the phase split per size — detection's share should grow with
// program size, which is why the paper's full-scale runs are
// detection-dominated while our corpus-scale runs are less so.
//
//===----------------------------------------------------------------------===//

#include "corpus/RandomApp.h"
#include "report/Nadroid.h"
#include "support/TableWriter.h"

#include <iostream>

using namespace nadroid;

int main() {
  TableWriter Table({"Activities", "Stmts", "Warnings", "Total(ms)",
                     "Model%", "Detect%", "Filter%"});

  for (unsigned Activities : {2u, 4u, 8u, 16u, 32u, 64u}) {
    corpus::RandomAppOptions O;
    O.Seed = 99;
    O.Activities = Activities;
    O.FieldsPerActivity = 3;
    O.CallbacksPerActivity = 6;
    O.MaxOpsPerCallback = 5;
    std::unique_ptr<ir::Program> P = corpus::generateRandomApp(O);

    report::NadroidResult R = report::analyzeProgram(*P);
    double Total = R.Timings.ModelingSec + R.Timings.DetectionSec +
                   R.Timings.FilteringSec;
    auto Pct = [&](double Part) {
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%.1f",
                    Total > 0 ? 100.0 * Part / Total : 0.0);
      return std::string(Buf);
    };
    Table.addRow({TableWriter::cell(Activities),
                  TableWriter::cell(P->statementCount()),
                  TableWriter::cell(R.warnings().size()),
                  TableWriter::cell(static_cast<long long>(Total * 1000)),
                  Pct(R.Timings.ModelingSec), Pct(R.Timings.DetectionSec),
                  Pct(R.Timings.FilteringSec)});
  }

  std::cout << "Scalability: generated apps of growing size through the "
               "full pipeline\n\n";
  Table.print(std::cout);
  std::cout << "\nDetection's share grows with size (the paper's 95.7% "
               "is the 100k-LOC limit of this curve).\n";
  return 0;
}
