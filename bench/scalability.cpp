//===- bench/scalability.cpp - Pipeline scalability curve -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// §8.8 discusses scalability: Chord handled >180K LOC and "if the
// execution time or scalability becomes an issue, the k-value can be
// adjusted at the cost of precision". This bench plots the reproduction's
// own curve: generated apps of growing size through the full pipeline,
// with the phase split per size — detection's share should grow with
// program size, which is why the paper's full-scale runs are
// detection-dominated while our corpus-scale runs are less so.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "corpus/RandomApp.h"
#include "ir/Printer.h"
#include "report/Batch.h"
#include "report/Nadroid.h"
#include "support/TableWriter.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

using namespace nadroid;
namespace fs = std::filesystem;

namespace {

/// Corpus-scale throughput: the paper ran its 27 apps one by one; the
/// batch driver fans them out over a thread pool. Exports the corpus to
/// a temp directory and times `--batch` at growing --jobs, checking the
/// report stays byte-identical. Returns false on a determinism failure.
bool runBatchSection() {
  std::error_code Ec;
  fs::path Dir = fs::temp_directory_path(Ec) / "nadroid-scalability-corpus";
  // A previous run (possibly of an older corpus) may have left files
  // behind; stale .air apps would silently inflate the batch timings.
  fs::remove_all(Dir, Ec);
  fs::create_directories(Dir, Ec);
  unsigned Written = 0;
  for (const corpus::Recipe &R : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(R);
    std::ofstream Out(Dir / (R.Name + ".air"));
    if (!Out)
      continue;
    ir::printProgram(*App.Prog, Out);
    ++Written;
  }

  TableWriter Jobs({"Jobs", "Wall(ms)", "Speedup"});
  double Base = 0;
  std::string FirstReport;
  bool Deterministic = true;
  for (unsigned N : {1u, 2u, 4u, 8u}) {
    report::BatchOptions O;
    O.Dir = Dir.string();
    O.Jobs = N;
    report::BatchResult BR = report::runBatch(O);
    std::string Report = report::renderBatchReport(BR);
    if (N == 1) {
      Base = BR.WallSec;
      FirstReport = Report;
    } else if (Report != FirstReport) {
      Deterministic = false;
    }
    char Sp[16];
    std::snprintf(Sp, sizeof(Sp), "%.2fx",
                  BR.WallSec > 0 ? Base / BR.WallSec : 0.0);
    Jobs.addRow({TableWriter::cell(N),
                 TableWriter::cell(static_cast<long long>(BR.WallSec * 1000)),
                 Sp});
  }
  fs::remove_all(Dir, Ec);

  std::cout << "\nBatch throughput over the exported " << Written
            << "-app corpus (--batch --jobs N)\n\n";
  Jobs.print(std::cout);
  std::cout << (Deterministic
                    ? "\nReports byte-identical across job counts.\n"
                    : "\nFAIL: batch reports differ across job counts\n");
  return Deterministic;
}

} // namespace

int main() {
  TableWriter Table({"Activities", "Stmts", "Warnings", "Total(ms)",
                     "Model%", "Detect%", "Filter%"});

  for (unsigned Activities : {2u, 4u, 8u, 16u, 32u, 64u}) {
    corpus::RandomAppOptions O;
    O.Seed = 99;
    O.Activities = Activities;
    O.FieldsPerActivity = 3;
    O.CallbacksPerActivity = 6;
    O.MaxOpsPerCallback = 5;
    std::unique_ptr<ir::Program> P = corpus::generateRandomApp(O);

    report::NadroidResult R = report::analyzeProgram(*P);
    double Total = R.Timings.ModelingSec + R.Timings.DetectionSec +
                   R.Timings.FilteringSec;
    auto Pct = [&](double Part) {
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%.1f",
                    Total > 0 ? 100.0 * Part / Total : 0.0);
      return std::string(Buf);
    };
    Table.addRow({TableWriter::cell(Activities),
                  TableWriter::cell(P->statementCount()),
                  TableWriter::cell(R.warnings().size()),
                  TableWriter::cell(static_cast<long long>(Total * 1000)),
                  Pct(R.Timings.ModelingSec), Pct(R.Timings.DetectionSec),
                  Pct(R.Timings.FilteringSec)});
  }

  std::cout << "Scalability: generated apps of growing size through the "
               "full pipeline\n\n";
  Table.print(std::cout);
  std::cout << "\nDetection's share grows with size (the paper's 95.7% "
               "is the 100k-LOC limit of this curve).\n";
  return runBatchSection() ? 0 : 1;
}
