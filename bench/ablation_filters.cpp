//===- bench/ablation_filters.cpp - Filter-stage ablation ------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// DESIGN.md calls out the pipeline's central design choice: a sound
// filtering core plus optional unsound filters that trade false-negative
// risk for a dramatically smaller report. This ablation quantifies that
// trade over the corpus plus the Table 2 injections:
//
//   * reviewer burden — warnings a programmer must triage under each
//     configuration (none / sound-only / sound+unsound);
//   * harm coverage — how many interpreter-confirmed bugs stay visible;
//   * the CHB-style loss — harmful injections the unsound stage hides.
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "corpus/Inject.h"
#include "support/TableWriter.h"

#include <iostream>

using namespace nadroid;
using corpus::SeedKind;

int main() {
  uint64_t Potential = 0, AfterSound = 0, AfterUnsound = 0;
  unsigned HarmfulTotal = 0, HarmfulAfterSound = 0,
           HarmfulAfterUnsound = 0;

  // Corpus apps + the Table 2 injected apps (the CHB loss needs them).
  std::vector<corpus::CorpusApp> Apps;
  for (const corpus::Recipe &R : corpus::allRecipes())
    Apps.push_back(corpus::buildApp(R));
  for (const corpus::InjectionSpec &S : corpus::table2Injections())
    Apps.push_back(corpus::buildInjectedApp(S));

  for (corpus::CorpusApp &App : Apps) {
    report::NadroidResult R = report::analyzeProgram(*App.Prog);
    Potential += R.warnings().size();
    AfterSound += R.Pipeline.RemainingAfterSound;
    AfterUnsound += R.Pipeline.RemainingAfterUnsound;

    // Ground truth from the seeds: harmful patterns and harmful-but-
    // pruned constructions. A seed may own several warnings (e.g. the
    // benign guard-load next to the real use); count the seed once, by
    // its best-surviving warning.
    std::map<const corpus::SeededBug *, filters::WarningVerdict::Stage>
        BestBySeed;
    for (size_t I = 0; I < R.warnings().size(); ++I) {
      const race::UafWarning &W = R.warnings()[I];
      const corpus::SeededBug *Seed =
          corpus::findSeed(App, W.F->qualifiedName());
      if (!Seed)
        continue;
      bool SeedHarmful = Seed->Kind == SeedKind::HarmfulUaf ||
                         Seed->Kind == SeedKind::FnChbErrorPath;
      if (!SeedHarmful)
        continue;
      filters::WarningVerdict::Stage Stage =
          R.Pipeline.Verdicts[I].StageReached;
      auto [It, Inserted] = BestBySeed.emplace(Seed, Stage);
      if (!Inserted && Stage > It->second)
        It->second = Stage; // Remaining is the largest enumerator
    }
    for (const auto &[Seed, Stage] : BestBySeed) {
      ++HarmfulTotal;
      if (Stage != filters::WarningVerdict::Stage::PrunedBySound)
        ++HarmfulAfterSound;
      if (Stage == filters::WarningVerdict::Stage::Remaining)
        ++HarmfulAfterUnsound;
    }
  }

  TableWriter Table({"Configuration", "To review", "Harmful visible",
                     "Harmful hidden"});
  Table.addRow({"no filters", TableWriter::cell(Potential),
                TableWriter::cell(HarmfulTotal), "0"});
  Table.addRow({"sound only", TableWriter::cell(AfterSound),
                TableWriter::cell(HarmfulAfterSound),
                TableWriter::cell(HarmfulTotal - HarmfulAfterSound)});
  Table.addRow({"sound + unsound", TableWriter::cell(AfterUnsound),
                TableWriter::cell(HarmfulAfterUnsound),
                TableWriter::cell(HarmfulTotal - HarmfulAfterUnsound)});

  std::cout << "Ablation: filter stages vs reviewer burden and harm "
               "coverage\n(27 corpus apps + the 8 Table 2 injected "
               "apps)\n\n";
  Table.print(std::cout);
  std::cout
      << "\nThe sound stage must hide nothing; the unsound stage hides "
         "exactly the CHB error-path constructions (the paper's §8.6 "
         "trade) while cutting the review list by another ~"
      << (AfterSound == 0
              ? 0
              : (100 * (AfterSound - AfterUnsound) / AfterSound))
      << "%. §6.2's remedy: use the unsound filters as a ranking "
         "(nadroid --rank), not a hard cut.\n";
  return 0;
}
