//===- bench/oracle_budget.cpp - Validator convergence ---------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The paper validates warnings by hand and calls automating it future
// work (§8.4). This bench characterizes the automated oracle: across the
// corpus's 88 seeded-harmful warnings, how many directed schedule trials
// does tryWitness need before the crashing schedule appears? Useful for
// picking the --validate budget: the curve should saturate quickly
// because directed runs slice the app to the relevant class cluster.
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "interp/Interp.h"
#include "support/StringUtils.h"
#include "support/TableWriter.h"

#include <iostream>

using namespace nadroid;

int main() {
  const unsigned Budgets[] = {1, 2, 5, 10, 20, 40};
  std::map<unsigned, unsigned> Confirmed;
  unsigned Harmful = 0;

  for (const corpus::Recipe &Recipe : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(Recipe);
    report::NadroidResult R = report::analyzeProgram(*App.Prog);

    for (size_t I : R.remainingIndices()) {
      const race::UafWarning &W = R.warnings()[I];
      const corpus::SeededBug *Seed =
          corpus::findSeed(App, W.F->qualifiedName());
      if (!Seed || Seed->Kind != corpus::SeedKind::HarmfulUaf)
        continue;
      if (W.Use->parentMethod()->qualifiedName() != Seed->UseMethod)
        continue; // the benign guard-load sibling
      ++Harmful;
      for (unsigned Budget : Budgets) {
        interp::ExploreOptions Opts;
        Opts.Seed = 17; // same seed as the Table 1 evaluation
        interp::ScheduleExplorer Explorer(*App.Prog, Opts);
        if (Explorer.tryWitness(W.Use, W.Free, Budget))
          ++Confirmed[Budget];
      }
    }
  }

  TableWriter Table({"Trials", "Confirmed", "Of", "Rate"});
  for (unsigned Budget : Budgets)
    Table.addRow({TableWriter::cell(Budget),
                  TableWriter::cell(Confirmed[Budget]),
                  TableWriter::cell(Harmful),
                  percent(double(Confirmed[Budget]), double(Harmful))});

  std::cout << "Oracle convergence: directed-trial budget vs confirmed "
               "harmful warnings (corpus ground truth: 88)\n\n";
  Table.print(std::cout);
  std::cout << "\nDirected slicing makes most bugs reproducible within a "
               "handful of trials; --validate uses 60 for margin.\n";
  return 0;
}
