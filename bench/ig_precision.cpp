//===- bench/ig_precision.cpp - Syntactic vs dataflow IG/IA -------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Measures what the inter-procedural nullness analysis buys the two
// guard-based sound filters over the paper-faithful syntactic analyses:
//
//  * Corpus sweep — both modes over the 27 Table 1 apps. The dataflow
//    mode must prune a superset of the syntactic mode per filter, and no
//    seeded-harmful warning may be newly filtered (the analysis stays
//    sound where ground truth exists).
//
//  * Injected §8.7 apps — corpus apps plus caller-checks /
//    callee-dereferences patterns the syntactic analyses cannot see,
//    demonstrating the strict part of the superset.
//
// Exit status is nonzero if the superset or zero-harmful invariants are
// violated, so CI can run this as a check.
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "support/StringUtils.h"
#include "support/TableWriter.h"

#include <chrono>
#include <iostream>

using namespace nadroid;
using filters::FilterKind;
using Clock = std::chrono::steady_clock;

namespace {

struct ModeCounts {
  uint64_t IgPruned = 0;
  uint64_t IaPruned = 0;
  double Seconds = 0;
};

struct SweepResult {
  uint64_t Potential = 0;
  ModeCounts Syntactic, Dataflow;
  /// Warnings the dataflow mode pruned that the syntactic mode kept.
  uint64_t NewlyPruned = 0;
  /// Of those, warnings on a seeded-harmful field (must stay zero).
  uint64_t HarmfulNewlyPruned = 0;
  /// Superset violations: syntactically pruned but not dataflow-pruned.
  uint64_t SupersetViolations = 0;
};

/// Runs both modes over \p App and folds the masks into \p Out.
void sweepApp(const corpus::CorpusApp &App, SweepResult &Out) {
  const ir::Program &P = *App.Prog;
  report::NadroidResult R = report::analyzeProgram(P);
  const std::vector<race::UafWarning> &W = R.warnings();
  Out.Potential += W.size();

  // One manager, two option sets over the same modeling/detection
  // products — only the guard source differs. The dataflow sweep reuses
  // the main pipeline's warm context; flipping DataflowGuards then
  // invalidates exactly the filter stage, so the syntactic rebuild still
  // shares the per-method guard/alloc caches. Its timing covers that
  // rebuild plus the sweeps; the dataflow context arrives warm, so its
  // column is sweep-only.
  pipeline::AnalysisManager &AM = *R.Manager;
  auto T1 = Clock::now();
  filters::FilterEngine &DfEngine = AM.engine(); // default: dataflow
  std::vector<bool> DfIg = DfEngine.pruneMask(W, {FilterKind::IG});
  std::vector<bool> DfIa = DfEngine.pruneMask(W, {FilterKind::IA});
  Out.Dataflow.Seconds +=
      std::chrono::duration<double>(Clock::now() - T1).count();

  pipeline::PipelineOptions SynOpts = AM.options();
  SynOpts.DataflowGuards = false;
  AM.setOptions(SynOpts);
  auto T0 = Clock::now();
  filters::FilterEngine &SynEngine = AM.engine(); // rebuilt, syntactic
  std::vector<bool> SynIg = SynEngine.pruneMask(W, {FilterKind::IG});
  std::vector<bool> SynIa = SynEngine.pruneMask(W, {FilterKind::IA});
  Out.Syntactic.Seconds +=
      std::chrono::duration<double>(Clock::now() - T0).count();

  for (size_t I = 0; I < W.size(); ++I) {
    Out.Syntactic.IgPruned += SynIg[I];
    Out.Syntactic.IaPruned += SynIa[I];
    Out.Dataflow.IgPruned += DfIg[I];
    Out.Dataflow.IaPruned += DfIa[I];
    if ((SynIg[I] && !DfIg[I]) || (SynIa[I] && !DfIa[I]))
      ++Out.SupersetViolations;
    bool Newly = (DfIg[I] && !SynIg[I]) || (DfIa[I] && !SynIa[I]);
    if (!Newly)
      continue;
    ++Out.NewlyPruned;
    const corpus::SeededBug *Seed =
        corpus::findSeed(App, W[I].F->qualifiedName());
    if (Seed && Seed->Kind == corpus::SeedKind::HarmfulUaf)
      ++Out.HarmfulNewlyPruned;
  }
}

void printSweep(const char *Title, const SweepResult &S) {
  std::cout << Title << "\n\n";
  TableWriter T({"Mode", "IG pruned", "IA pruned", "Of", "IG share", "Time"});
  auto Row = [&](const char *Name, const ModeCounts &M) {
    T.addRow({Name, TableWriter::cell((long long)M.IgPruned),
              TableWriter::cell((long long)M.IaPruned),
              TableWriter::cell((long long)S.Potential),
              percent(double(M.IgPruned), double(S.Potential)),
              std::to_string(M.Seconds).substr(0, 5) + "s"});
  };
  Row("syntactic", S.Syntactic);
  Row("dataflow", S.Dataflow);
  T.print(std::cout);
  std::cout << "\nnewly pruned by dataflow: " << S.NewlyPruned
            << " (harmful among them: " << S.HarmfulNewlyPruned
            << ", superset violations: " << S.SupersetViolations << ")\n\n";
}

} // namespace

int main() {
  bool Ok = true;

  // Sweep 1: the 27 Table 1 apps as-is.
  SweepResult Corpus;
  for (const corpus::Recipe &R : corpus::allRecipes())
    sweepApp(corpus::buildApp(R), Corpus);
  printSweep("27-app corpus: IG/IA pruned per mode", Corpus);
  if (Corpus.SupersetViolations != 0) {
    std::cout << "FAIL: dataflow mode lost syntactically-pruned warnings\n";
    Ok = false;
  }
  if (Corpus.HarmfulNewlyPruned != 0) {
    std::cout << "FAIL: dataflow mode filtered seeded-harmful warnings\n";
    Ok = false;
  }

  // Sweep 2: the same apps with three injected §8.7 shapes each — the
  // strict part of the superset.
  SweepResult Injected;
  for (const corpus::Recipe &R : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(R);
    ir::IRBuilder B(*App.Prog);
    corpus::PatternEmitter E(B, "Ip");
    for (int I = 0; I < 3; ++I)
      E.falseIgInterproc();
    for (const corpus::SeededBug &S : E.seeds())
      App.Seeds.push_back(S);
    sweepApp(App, Injected);
  }
  printSweep("27 apps + 3 injected inter-procedural guards each", Injected);
  if (Injected.SupersetViolations != 0 || Injected.HarmfulNewlyPruned != 0) {
    std::cout << "FAIL: invariants violated on the injected sweep\n";
    Ok = false;
  }
  if (Injected.Dataflow.IgPruned <= Injected.Syntactic.IgPruned) {
    std::cout << "FAIL: injected inter-procedural guards were not "
                 "additionally pruned\n";
    Ok = false;
  }

  std::cout << (Ok ? "OK: dataflow IG/IA subsume the syntactic analyses\n"
                   : "");
  return Ok ? 0 : 1;
}
