//===- bench/table3_deva.cpp - Regenerate Table 3 ------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's Table 3 (comparison to DEvA) over the train
// apps: every warning DEvA marks harmful is checked against nAdroid —
// does nAdroid detect the same (field, use-callback, free-callback)
// anomaly, and if so, do its happens-before filters prune it?
//
// Per §8.7, "detected" uses nAdroid with only the sound IG/IA filters
// (matching DEvA's harmfulness definition); the HB filters then explain
// why most DEvA-harmful warnings are false positives. The expected shape:
// nAdroid detects all DEvA-harmful warnings except Fragment-hosted ones
// (modeling limitation, §8.1), and filters the onDestroy cases via MHB.
// Conversely, nAdroid's true harmful warnings (Table 1) are mostly
// invisible to DEvA because their use/free pairs span class groups.
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "deva/Deva.h"
#include "support/TableWriter.h"

#include <iostream>

using namespace nadroid;

int main() {
  TableWriter Summary({"APP", "DEvA-harmful", "Detected", "Filtered",
                       "Agreed", "NotDetected"});
  TableWriter Detail(
      {"APP", "Field", "UseCallback", "FreeCallback", "nAdroid"});
  constexpr size_t DetailCap = 20;

  unsigned DevaHarmful = 0, Detected = 0, Filtered = 0, Reported = 0,
           NotDetected = 0;
  unsigned NadroidTrueInvisibleToDeva = 0, NadroidTrueTotal = 0;

  for (corpus::CorpusApp &App : corpus::buildTrainCorpus()) {
    deva::DevaResult Deva = deva::runDeva(*App.Prog);
    report::NadroidResult R = report::analyzeProgram(*App.Prog);

    unsigned AppHarmful = 0, AppDetected = 0, AppFiltered = 0,
             AppReported = 0, AppMissed = 0;
    for (const deva::DevaWarning *W : Deva.harmful()) {
      ++DevaHarmful;
      ++AppHarmful;
      // Does nAdroid detect the same anomaly (same field, callbacks)?
      const filters::WarningVerdict *Verdict = nullptr;
      bool Remaining = false;
      for (size_t I = 0; I < R.warnings().size(); ++I) {
        const race::UafWarning &NW = R.warnings()[I];
        if (NW.F != W->F ||
            NW.Use->parentMethod() != W->UseCallback ||
            NW.Free->parentMethod() != W->FreeCallback)
          continue;
        Verdict = &R.Pipeline.Verdicts[I];
        Remaining |= Verdict->StageReached ==
                     filters::WarningVerdict::Stage::Remaining;
      }

      std::string Outcome;
      bool Interesting = false;
      if (!Verdict) {
        Outcome = "Not detected";
        ++NotDetected;
        ++AppMissed;
        Interesting = true; // the Fragment-limitation rows
      } else if (Remaining) {
        Outcome = "Detected & Reported";
        ++Detected;
        ++Reported;
        ++AppDetected;
        ++AppReported;
      } else {
        Outcome = "Detected & Filtered";
        ++Detected;
        ++Filtered;
        ++AppDetected;
        ++AppFiltered;
      }
      if (Interesting || Detail.rowCount() < DetailCap)
        Detail.addRow({App.Name, W->F->qualifiedName(),
                       W->UseCallback->qualifiedName(),
                       W->FreeCallback->qualifiedName(), Outcome});
    }
    Summary.addRow({App.Name, TableWriter::cell(AppHarmful),
                    TableWriter::cell(AppDetected),
                    TableWriter::cell(AppFiltered),
                    TableWriter::cell(AppReported),
                    TableWriter::cell(AppMissed)});

    // The reverse direction: how many of nAdroid's interpreter-relevant
    // true warnings does DEvA miss (inter-class scope)?
    for (size_t I : R.remainingIndices()) {
      const race::UafWarning &NW = R.warnings()[I];
      const corpus::SeededBug *Seed =
          corpus::findSeed(App, NW.F->qualifiedName());
      if (!Seed || Seed->Kind != corpus::SeedKind::HarmfulUaf)
        continue;
      ++NadroidTrueTotal;
      bool DevaSees = false;
      for (const deva::DevaWarning &DW : Deva.Warnings)
        if (DW.F == NW.F)
          DevaSees = true;
      if (!DevaSees)
        ++NadroidTrueInvisibleToDeva;
    }
  }

  std::cout << "Table 3: comparison to DEvA over the train apps\n\n";
  Summary.print(std::cout);
  std::cout << "\nRepresentative rows (first " << DetailCap
            << " plus every 'Not detected'):\n\n";
  Detail.print(std::cout);
  std::cout << "\nDEvA-harmful warnings: " << DevaHarmful << "; nAdroid "
            << "detected " << Detected << " (filtered " << Filtered
            << ", agreed harmful " << Reported << "), missed "
            << NotDetected << " (Fragment-hosted)\n";
  std::cout << "nAdroid true harmful warnings in the train apps: "
            << NadroidTrueTotal << "; invisible to DEvA's intra-class "
            << "analysis: " << NadroidTrueInvisibleToDeva << "\n";
  std::cout << "(paper: 13 DEvA-harmful rows; 12 detected, 11 filtered, 1 "
               "agreed, 1 Fragment miss; DEvA misses e.g. all of Figure "
               "1's bugs)\n";
  return 0;
}
