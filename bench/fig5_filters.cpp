//===- bench/fig5_filters.cpp - Regenerate Figure 5 ---------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 5: the effectiveness of each filter applied
// independently over the 20 test apps.
//
//  (a) sound filters on all potential warnings — paper: MHB 21%, IG 66%,
//      IA 13%, all-sound 88%.
//  (b) unsound filters on the warnings surviving the sound stage — paper:
//      mayHB 13%, MA 26%, UR 29%, TT 15%, all-unsound 70%.
//
// Each filter is evaluated in isolation, so the bars overlap (§8.3).
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "corpus/Patterns.h"
#include "ir/IRBuilder.h"
#include "support/StringUtils.h"
#include "support/TableWriter.h"

#include <iostream>

using namespace nadroid;
using filters::FilterKind;

namespace {

struct Accum {
  uint64_t Potential = 0;
  uint64_t AfterSoundInput = 0; // warnings entering the unsound stage
  std::map<std::string, uint64_t> PrunedBy;
};

unsigned countTrue(const std::vector<bool> &Mask) {
  unsigned N = 0;
  for (bool B : Mask)
    if (B)
      ++N;
  return N;
}

} // namespace

int main() {
  Accum A;

  const std::vector<std::pair<std::string, std::vector<FilterKind>>>
      SoundSets = {
          {"MHB", {FilterKind::MHB}},
          {"IG", {FilterKind::IG}},
          {"IA", {FilterKind::IA}},
          {"All-sound", filters::soundFilterKinds()},
      };
  const std::vector<std::pair<std::string, std::vector<FilterKind>>>
      UnsoundSets = {
          {"mayHB", filters::mayHbFilterKinds()},
          {"MA", {FilterKind::MA}},
          {"UR", {FilterKind::UR}},
          {"TT", {FilterKind::TT}},
          {"All-unsound", filters::unsoundFilterKinds()},
      };

  for (corpus::CorpusApp &App : corpus::buildTestCorpus()) {
    report::NadroidResult R = report::analyzeProgram(*App.Prog);
    const auto &Warnings = R.warnings();
    A.Potential += Warnings.size();

    filters::FilterEngine &Engine = R.Manager->engine();
    for (const auto &[Name, Kinds] : SoundSets)
      A.PrunedBy[Name] += countTrue(Engine.pruneMask(Warnings, Kinds));

    // Unsound filters are measured on the sound-survivor warnings, each
    // restricted to its surviving pairs — rebuild that warning list.
    std::vector<race::UafWarning> Survivors;
    for (size_t I = 0; I < Warnings.size(); ++I) {
      const filters::WarningVerdict &V = R.Pipeline.Verdicts[I];
      if (V.PairsAfterSound.empty())
        continue;
      race::UafWarning W = Warnings[I];
      W.Pairs = V.PairsAfterSound;
      Survivors.push_back(std::move(W));
    }
    A.AfterSoundInput += Survivors.size();
    for (const auto &[Name, Kinds] : UnsoundSets)
      A.PrunedBy[Name] += countTrue(Engine.pruneMask(Survivors, Kinds));
  }

  std::cout << "Figure 5(a): sound filters applied independently over the "
               "20 test apps\n\n";
  TableWriter TA({"Filter", "Pruned", "Of", "Share", "Paper"});
  const std::vector<std::pair<std::string, std::string>> PaperA = {
      {"MHB", "21%"}, {"IG", "66%"}, {"IA", "13%"}, {"All-sound", "88%"}};
  for (const auto &[Name, Paper] : PaperA)
    TA.addRow({Name, TableWriter::cell(A.PrunedBy[Name]),
               TableWriter::cell(A.Potential),
               percent(double(A.PrunedBy[Name]), double(A.Potential)),
               Paper});
  TA.print(std::cout);

  std::cout << "\nFigure 5(b): unsound filters applied independently to "
               "the sound-stage survivors\n\n";
  TableWriter TB({"Filter", "Pruned", "Of", "Share", "Paper"});
  const std::vector<std::pair<std::string, std::string>> PaperB = {
      {"mayHB", "13%"},
      {"MA", "26%"},
      {"UR", "29%"},
      {"TT", "15%"},
      {"All-unsound", "70%"}};
  for (const auto &[Name, Paper] : PaperB)
    TB.addRow({Name, TableWriter::cell(A.PrunedBy[Name]),
               TableWriter::cell(A.AfterSoundInput),
               percent(double(A.PrunedBy[Name]), double(A.AfterSoundInput)),
               Paper});
  TB.print(std::cout);

  // Refutation split: the may-HB suppressions over a dedicated app
  // seeding each filter's provably-ordered and genuinely-racy variants
  // (these patterns are not in any corpus recipe, so the tables above
  // are untouched). Proved = the refuter found no abstract message
  // history running the use after the free; Assumed = a counterexample
  // history exists and the suppression rests on the filter's heuristic.
  ir::Program RP("refuter-patterns");
  {
    ir::IRBuilder B(RP);
    corpus::PatternEmitter E(B);
    E.falseRhb();
    E.falseChb();
    E.falsePhb();
    E.rhbProved();
    E.rhbRacy();
    E.chbProved();
    E.chbRacy();
    E.chbResumeRacy();
    E.phbProved();
    E.phbRacy();
  }
  report::NadroidOptions ROpts;
  ROpts.Refute = true;
  report::NadroidResult RR = report::analyzeProgram(RP, ROpts);
  std::map<std::string, std::pair<uint64_t, uint64_t>> Split;
  for (const filters::WarningVerdict &V : RR.Pipeline.Verdicts)
    for (const filters::PairDecision &D : V.Decisions) {
      bool MayHb = false;
      for (FilterKind K : filters::mayHbFilterKinds())
        MayHb |= D.By == K;
      if (!MayHb || filters::isSoundFilter(D.By))
        continue;
      auto &S = Split[filters::filterKindName(D.By)];
      ++(D.Prov == filters::Provenance::Proved ? S.first : S.second);
    }
  std::cout << "\nRefutation engine (--refute): may-HB suppressions over "
               "the seeded variants\n\n";
  TableWriter TC({"Filter", "Proved", "Assumed"});
  for (const char *Name : {"RHB", "CHB", "PHB"}) {
    const auto &S = Split[Name];
    TC.addRow({Name, TableWriter::cell(S.first),
               TableWriter::cell(S.second)});
  }
  TC.print(std::cout);
  return 0;
}
