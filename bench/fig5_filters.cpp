//===- bench/fig5_filters.cpp - Regenerate Figure 5 ---------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 5: the effectiveness of each filter applied
// independently over the 20 test apps.
//
//  (a) sound filters on all potential warnings — paper: MHB 21%, IG 66%,
//      IA 13%, all-sound 88%.
//  (b) unsound filters on the warnings surviving the sound stage — paper:
//      mayHB 13%, MA 26%, UR 29%, TT 15%, all-unsound 70%.
//
// Each filter is evaluated in isolation, so the bars overlap (§8.3).
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "support/StringUtils.h"
#include "support/TableWriter.h"

#include <iostream>

using namespace nadroid;
using filters::FilterKind;

namespace {

struct Accum {
  uint64_t Potential = 0;
  uint64_t AfterSoundInput = 0; // warnings entering the unsound stage
  std::map<std::string, uint64_t> PrunedBy;
};

unsigned countTrue(const std::vector<bool> &Mask) {
  unsigned N = 0;
  for (bool B : Mask)
    if (B)
      ++N;
  return N;
}

} // namespace

int main() {
  Accum A;

  const std::vector<std::pair<std::string, std::vector<FilterKind>>>
      SoundSets = {
          {"MHB", {FilterKind::MHB}},
          {"IG", {FilterKind::IG}},
          {"IA", {FilterKind::IA}},
          {"All-sound", filters::soundFilterKinds()},
      };
  const std::vector<std::pair<std::string, std::vector<FilterKind>>>
      UnsoundSets = {
          {"mayHB", filters::mayHbFilterKinds()},
          {"MA", {FilterKind::MA}},
          {"UR", {FilterKind::UR}},
          {"TT", {FilterKind::TT}},
          {"All-unsound", filters::unsoundFilterKinds()},
      };

  for (corpus::CorpusApp &App : corpus::buildTestCorpus()) {
    report::NadroidResult R = report::analyzeProgram(*App.Prog);
    const auto &Warnings = R.warnings();
    A.Potential += Warnings.size();

    filters::FilterEngine &Engine = R.Manager->engine();
    for (const auto &[Name, Kinds] : SoundSets)
      A.PrunedBy[Name] += countTrue(Engine.pruneMask(Warnings, Kinds));

    // Unsound filters are measured on the sound-survivor warnings, each
    // restricted to its surviving pairs — rebuild that warning list.
    std::vector<race::UafWarning> Survivors;
    for (size_t I = 0; I < Warnings.size(); ++I) {
      const filters::WarningVerdict &V = R.Pipeline.Verdicts[I];
      if (V.PairsAfterSound.empty())
        continue;
      race::UafWarning W = Warnings[I];
      W.Pairs = V.PairsAfterSound;
      Survivors.push_back(std::move(W));
    }
    A.AfterSoundInput += Survivors.size();
    for (const auto &[Name, Kinds] : UnsoundSets)
      A.PrunedBy[Name] += countTrue(Engine.pruneMask(Survivors, Kinds));
  }

  std::cout << "Figure 5(a): sound filters applied independently over the "
               "20 test apps\n\n";
  TableWriter TA({"Filter", "Pruned", "Of", "Share", "Paper"});
  const std::vector<std::pair<std::string, std::string>> PaperA = {
      {"MHB", "21%"}, {"IG", "66%"}, {"IA", "13%"}, {"All-sound", "88%"}};
  for (const auto &[Name, Paper] : PaperA)
    TA.addRow({Name, TableWriter::cell(A.PrunedBy[Name]),
               TableWriter::cell(A.Potential),
               percent(double(A.PrunedBy[Name]), double(A.Potential)),
               Paper});
  TA.print(std::cout);

  std::cout << "\nFigure 5(b): unsound filters applied independently to "
               "the sound-stage survivors\n\n";
  TableWriter TB({"Filter", "Pruned", "Of", "Share", "Paper"});
  const std::vector<std::pair<std::string, std::string>> PaperB = {
      {"mayHB", "13%"},
      {"MA", "26%"},
      {"UR", "29%"},
      {"TT", "15%"},
      {"All-unsound", "70%"}};
  for (const auto &[Name, Paper] : PaperB)
    TB.addRow({Name, TableWriter::cell(A.PrunedBy[Name]),
               TableWriter::cell(A.AfterSoundInput),
               percent(double(A.PrunedBy[Name]), double(A.AfterSoundInput)),
               Paper});
  TB.print(std::cout);
  return 0;
}
