//===- bench/fig5_filters.cpp - Regenerate Figure 5 ---------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 5: the effectiveness of each filter applied
// independently over the 20 test apps.
//
//  (a) sound filters on all potential warnings — paper: MHB 21%, IG 66%,
//      IA 13%, all-sound 88%.
//  (b) unsound filters on the warnings surviving the sound stage — paper:
//      mayHB 13%, MA 26%, UR 29%, TT 15%, all-unsound 70%.
//
// Each filter is evaluated in isolation, so the bars overlap (§8.3).
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "corpus/Patterns.h"
#include "ir/IRBuilder.h"
#include "support/StringUtils.h"
#include "support/TableWriter.h"

#include <cstring>
#include <iostream>

using namespace nadroid;
using filters::FilterKind;

namespace {

struct Accum {
  uint64_t Potential = 0;
  uint64_t AfterSoundInput = 0; // warnings entering the unsound stage
  std::map<std::string, uint64_t> PrunedBy;
};

unsigned countTrue(const std::vector<bool> &Mask) {
  unsigned N = 0;
  for (bool B : Mask)
    if (B)
      ++N;
  return N;
}

/// Per-filter provenance split of the may-HB suppressions.
struct ProvSplit {
  uint64_t Proved = 0;
  uint64_t ProvedV2 = 0;
  uint64_t Assumed = 0;
};

/// Seeds every refuter pattern — the tier-1 variants plus the tier-2
/// history variants — into \p P. Shared by both refutation runs so the
/// tier-1 and tier-2 splits describe the same pair population.
void seedRefuterPatterns(ir::Program &P) {
  ir::IRBuilder B(P);
  corpus::PatternEmitter E(B);
  E.falseRhb();
  E.falseChb();
  E.falsePhb();
  E.rhbProved();
  E.rhbRacy();
  E.chbProved();
  E.chbRacy();
  E.chbResumeRacy();
  E.phbProved();
  E.phbRacy();
  E.rhbRepeatProved();
  E.rhbRepeatRacy();
  E.chbDeepProved();
  E.chbRepeatProved();
  E.chbRepeatRacy();
  E.phbChainProved();
  E.phbChainRacy();
}

/// Runs the refutation engine over the seeded pattern app and returns
/// the per-filter provenance split of every may-HB pair decision.
///
/// Both tiers run over the same manager: flipping RefuteHistory through
/// setOptions() invalidates only the filter stage, so the forest,
/// points-to, and HbQuery built for tier 1 are reused by tier 2 instead
/// of being rebuilt from a fresh program.
std::map<std::string, ProvSplit>
refutationSplit(std::shared_ptr<pipeline::AnalysisManager> AM,
                bool RefuteHistory) {
  report::NadroidOptions ROpts = AM->options();
  ROpts.RefuteHistory = RefuteHistory;
  AM->setOptions(ROpts);
  report::NadroidResult RR = report::analyzeProgram(std::move(AM));
  std::map<std::string, ProvSplit> Split;
  for (const filters::WarningVerdict &V : RR.Pipeline.Verdicts)
    for (const filters::PairDecision &D : V.Decisions) {
      bool MayHb = false;
      for (FilterKind K : filters::mayHbFilterKinds())
        MayHb |= D.By == K;
      if (!MayHb || filters::isSoundFilter(D.By))
        continue;
      ProvSplit &S = Split[filters::filterKindName(D.By)];
      switch (D.Prov) {
      case filters::Provenance::Proved:
        ++S.Proved;
        break;
      case filters::Provenance::ProvedV2:
        ++S.ProvedV2;
        break;
      default:
        ++S.Assumed;
        break;
      }
    }
  return Split;
}

} // namespace

int main(int argc, char **argv) {
  // The refuter-patterns app and its manager, shared by the tier-1 and
  // tier-2 splits in both output modes. The program must outlive the
  // manager, so both live here rather than inside refutationSplit.
  ir::Program RP("refuter-patterns");
  seedRefuterPatterns(RP);
  report::NadroidOptions ROpts;
  ROpts.Refute = true;
  auto RM = std::make_shared<pipeline::AnalysisManager>(RP, ROpts);

  // --json: emit only the machine-readable refutation split (the
  // BENCH_refute.json schema) and skip the corpus tables.
  bool JsonOnly = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  if (JsonOnly) {
    std::map<std::string, ProvSplit> T1 = refutationSplit(RM, false);
    std::map<std::string, ProvSplit> T2 = refutationSplit(RM, true);
    ProvSplit Tot1, Tot2;
    std::cout << "{\n  \"filters\": {\n";
    bool First = true;
    for (const char *Name : {"RHB", "CHB", "PHB"}) {
      const ProvSplit &S1 = T1[Name];
      const ProvSplit &S2 = T2[Name];
      Tot1.Proved += S1.Proved;
      Tot1.Assumed += S1.Assumed;
      Tot2.Proved += S2.Proved;
      Tot2.ProvedV2 += S2.ProvedV2;
      Tot2.Assumed += S2.Assumed;
      std::cout << (First ? "" : ",\n") << "    \"" << Name
                << "\": {\"tier1Proved\": " << S1.Proved
                << ", \"tier1Assumed\": " << S1.Assumed
                << ", \"tier2Proved\": " << S2.Proved
                << ", \"tier2ProvedV2\": " << S2.ProvedV2
                << ", \"tier2Assumed\": " << S2.Assumed << "}";
      First = false;
    }
    double Reduction =
        Tot1.Assumed == 0
            ? 0.0
            : 100.0 * double(Tot1.Assumed - Tot2.Assumed) /
                  double(Tot1.Assumed);
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.1f", Reduction);
    std::cout << "\n  },\n  \"tier1\": {\"proved\": " << Tot1.Proved
              << ", \"assumed\": " << Tot1.Assumed
              << "},\n  \"tier2\": {\"proved\": " << Tot2.Proved
              << ", \"provedV2\": " << Tot2.ProvedV2
              << ", \"assumed\": " << Tot2.Assumed
              << "},\n  \"assumedReductionPct\": " << Buf << "\n}\n";
    return 0;
  }

  Accum A;

  const std::vector<std::pair<std::string, std::vector<FilterKind>>>
      SoundSets = {
          {"MHB", {FilterKind::MHB}},
          {"IG", {FilterKind::IG}},
          {"IA", {FilterKind::IA}},
          {"All-sound", filters::soundFilterKinds()},
      };
  const std::vector<std::pair<std::string, std::vector<FilterKind>>>
      UnsoundSets = {
          {"mayHB", filters::mayHbFilterKinds()},
          {"MA", {FilterKind::MA}},
          {"UR", {FilterKind::UR}},
          {"TT", {FilterKind::TT}},
          {"All-unsound", filters::unsoundFilterKinds()},
      };

  for (corpus::CorpusApp &App : corpus::buildTestCorpus()) {
    report::NadroidResult R = report::analyzeProgram(*App.Prog);
    const auto &Warnings = R.warnings();
    A.Potential += Warnings.size();

    filters::FilterEngine &Engine = R.Manager->engine();
    for (const auto &[Name, Kinds] : SoundSets)
      A.PrunedBy[Name] += countTrue(Engine.pruneMask(Warnings, Kinds));

    // Unsound filters are measured on the sound-survivor warnings, each
    // restricted to its surviving pairs — rebuild that warning list.
    std::vector<race::UafWarning> Survivors;
    for (size_t I = 0; I < Warnings.size(); ++I) {
      const filters::WarningVerdict &V = R.Pipeline.Verdicts[I];
      if (V.PairsAfterSound.empty())
        continue;
      race::UafWarning W = Warnings[I];
      W.Pairs = V.PairsAfterSound;
      Survivors.push_back(std::move(W));
    }
    A.AfterSoundInput += Survivors.size();
    for (const auto &[Name, Kinds] : UnsoundSets)
      A.PrunedBy[Name] += countTrue(Engine.pruneMask(Survivors, Kinds));
  }

  std::cout << "Figure 5(a): sound filters applied independently over the "
               "20 test apps\n\n";
  TableWriter TA({"Filter", "Pruned", "Of", "Share", "Paper"});
  const std::vector<std::pair<std::string, std::string>> PaperA = {
      {"MHB", "21%"}, {"IG", "66%"}, {"IA", "13%"}, {"All-sound", "88%"}};
  for (const auto &[Name, Paper] : PaperA)
    TA.addRow({Name, TableWriter::cell(A.PrunedBy[Name]),
               TableWriter::cell(A.Potential),
               percent(double(A.PrunedBy[Name]), double(A.Potential)),
               Paper});
  TA.print(std::cout);

  std::cout << "\nFigure 5(b): unsound filters applied independently to "
               "the sound-stage survivors\n\n";
  TableWriter TB({"Filter", "Pruned", "Of", "Share", "Paper"});
  const std::vector<std::pair<std::string, std::string>> PaperB = {
      {"mayHB", "13%"},
      {"MA", "26%"},
      {"UR", "29%"},
      {"TT", "15%"},
      {"All-unsound", "70%"}};
  for (const auto &[Name, Paper] : PaperB)
    TB.addRow({Name, TableWriter::cell(A.PrunedBy[Name]),
               TableWriter::cell(A.AfterSoundInput),
               percent(double(A.PrunedBy[Name]), double(A.AfterSoundInput)),
               Paper});
  TB.print(std::cout);

  // Refutation split: the may-HB suppressions over a dedicated app
  // seeding each filter's provably-ordered and genuinely-racy variants
  // (these patterns are not in any corpus recipe, so the tables above
  // are untouched). Proved = tier 1 found no abstract message history
  // running the use after the free; Proved-v2 = the tier-2 history
  // refinement discharged a pair tier 1 assumed; Assumed = a stable
  // counterexample history survived every refinement.
  std::map<std::string, ProvSplit> T1 = refutationSplit(RM, false);
  std::map<std::string, ProvSplit> T2 = refutationSplit(RM, true);
  std::cout << "\nRefutation engine: may-HB suppressions over the seeded "
               "variants (tier 1 --refute vs tier 2 --refute-v2)\n\n";
  TableWriter TC({"Filter", "T1-Proved", "T1-Assumed", "T2-Proved",
                  "T2-Proved-v2", "T2-Assumed"});
  ProvSplit Tot1, Tot2;
  for (const char *Name : {"RHB", "CHB", "PHB"}) {
    const ProvSplit &S1 = T1[Name];
    const ProvSplit &S2 = T2[Name];
    Tot1.Proved += S1.Proved;
    Tot1.Assumed += S1.Assumed;
    Tot2.Proved += S2.Proved;
    Tot2.ProvedV2 += S2.ProvedV2;
    Tot2.Assumed += S2.Assumed;
    TC.addRow({Name, TableWriter::cell(S1.Proved),
               TableWriter::cell(S1.Assumed), TableWriter::cell(S2.Proved),
               TableWriter::cell(S2.ProvedV2),
               TableWriter::cell(S2.Assumed)});
  }
  TC.addRow({"Total", TableWriter::cell(Tot1.Proved),
             TableWriter::cell(Tot1.Assumed), TableWriter::cell(Tot2.Proved),
             TableWriter::cell(Tot2.ProvedV2),
             TableWriter::cell(Tot2.Assumed)});
  TC.print(std::cout);
  if (Tot1.Assumed)
    std::cout << "\nAssumed reduced "
              << percent(double(Tot1.Assumed - Tot2.Assumed),
                         double(Tot1.Assumed))
              << " by the tier-2 history refinement\n";
  return 0;
}
