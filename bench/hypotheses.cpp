//===- bench/hypotheses.cpp - §8.4's empirical hypotheses ------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Reproduces §7/§8.4's empirical claim: true UAF bugs occur more often
// where Posted Callbacks or Non-reachable Threads are involved, because
// those interactions are the hardest to reason about. Over the whole
// corpus, this bench computes, per pair type, how many remaining warnings
// the interpreter confirms harmful.
//
// Paper: "most true UAF races are found in cases where PC and NT are
// involved"; Figure 1's examples are EC-PC, PC-PC, and C-NT.
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "interp/Interp.h"
#include "support/StringUtils.h"
#include "support/TableWriter.h"

#include <iostream>

using namespace nadroid;
using report::PairType;

int main() {
  std::map<PairType, unsigned> Remaining, Harmful;

  for (const corpus::Recipe &Recipe : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(Recipe);
    corpus::AppEvaluation E = corpus::evaluateApp(App);
    // Remaining by type comes straight from the evaluation; harmful by
    // type needs the per-warning view.
    for (const auto &[Type, Count] : E.RemainingByType)
      Remaining[Type] += Count;
    const report::NadroidResult &R = E.Result;
    interp::ExploreOptions Opts;
    Opts.Seed = 17;
    interp::ScheduleExplorer Explorer(*App.Prog, Opts);
    for (size_t I : R.remainingIndices()) {
      const race::UafWarning &W = R.warnings()[I];
      if (!Explorer.tryWitness(W.Use, W.Free, 40))
        continue;
      Harmful[report::classifyWarning(
          *R.Forest, R.Pipeline.Verdicts[I].PairsRemaining)] += 1;
    }
  }

  TableWriter Table({"Pair type", "Remaining", "Harmful", "Harmful rate"});
  unsigned EcInvolvedHarmful = 0, PcNtInvolvedHarmful = 0;
  for (PairType T : {PairType::EcEc, PairType::EcPc, PairType::PcPc,
                     PairType::CRt, PairType::CNt}) {
    unsigned Rem = Remaining.count(T) ? Remaining[T] : 0;
    unsigned Harm = Harmful.count(T) ? Harmful[T] : 0;
    Table.addRow({report::pairTypeName(T), TableWriter::cell(Rem),
                  TableWriter::cell(Harm),
                  percent(double(Harm), double(Rem))});
    if (T == PairType::EcEc)
      EcInvolvedHarmful += Harm;
    else
      PcNtInvolvedHarmful += Harm;
  }

  std::cout << "§8.4: do PC- and NT-involved warnings carry the harm?\n\n";
  Table.print(std::cout);
  std::cout << "\nHarmful bugs involving a PC or a thread: "
            << PcNtInvolvedHarmful << "; EC-EC only: " << EcInvolvedHarmful
            << "\n(paper: most true UAFs involve PCs or NTs; Figure 1's "
               "exemplars are EC-PC, PC-PC, C-NT)\n";
  return 0;
}
