//===- bench/table2_falseneg.cpp - Regenerate Table 2 -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's Table 2 (false-negative analysis): 28 artificial
// UAF violations are injected into 8 apps; nAdroid should report all but
// five — two escape detection entirely (framework round-trip breaks the
// call graph) and three are wrongly pruned by the unsound CHB filter.
// Every injected bug is additionally confirmed harmful by directed
// schedule exploration — including the two the static detector misses,
// which is exactly the point of the experiment.
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "corpus/Inject.h"
#include "interp/Interp.h"
#include "support/TableWriter.h"

#include <iostream>

using namespace nadroid;
using corpus::SeedKind;

namespace {

bool isInjectedSeed(const corpus::SeededBug &Seed) {
  // Injected patterns carry the "X" prefix in their generated names.
  return Seed.FieldName.find(".fX") != std::string::npos ||
         Seed.FieldName.find(".pX") != std::string::npos;
}

} // namespace

int main() {
  TableWriter Table({"APP", "EC-EC", "EC-PC", "PC-PC", "C-RT", "C-NT",
                     "All", "Missed", "PrunedUnsound", "Proved", "Assumed",
                     "Witnessed"});

  unsigned TotAll = 0, TotMissed = 0, TotPruned = 0, TotWitnessed = 0;
  unsigned TotProved = 0, TotAssumed = 0;
  std::map<report::PairType, unsigned> TotByType;

  for (const corpus::InjectionSpec &Spec : corpus::table2Injections()) {
    corpus::CorpusApp App = corpus::buildInjectedApp(Spec);
    // --refute: provenance is metadata, so every count the paper pins is
    // unchanged; the extra columns split the wrongly-pruned injections
    // into refuter-proved (none, by construction — they are harmful) and
    // demoted-to-assumed suppressions.
    report::NadroidOptions Opts;
    Opts.Refute = true;
    report::NadroidResult R = report::analyzeProgram(*App.Prog, Opts);

    interp::ExploreOptions InterpOpts;
    InterpOpts.Seed = 23;
    interp::ScheduleExplorer Explorer(*App.Prog, InterpOpts);

    unsigned Missed = 0, Pruned = 0, Witnessed = 0;
    unsigned Proved = 0, Assumed = 0;
    std::map<report::PairType, unsigned> ByType;
    for (const corpus::SeededBug &Seed : App.Seeds) {
      if (!isInjectedSeed(Seed))
        continue;
      ++ByType[Seed.ExpectedType];
      ++TotByType[Seed.ExpectedType];

      // Find the injected warning and its verdict. A seed's field can
      // carry several warnings (e.g. the benign guard-load next to the
      // real use); the seed counts as reported if any of them remains,
      // and the seed's own use site is preferred for matching.
      const race::UafWarning *Found = nullptr;
      const filters::WarningVerdict *Verdict = nullptr;
      int BestScore = -1;
      for (size_t I = 0; I < R.warnings().size(); ++I) {
        if (R.warnings()[I].F->qualifiedName() != Seed.FieldName)
          continue;
        bool Remaining = R.Pipeline.Verdicts[I].StageReached ==
                         filters::WarningVerdict::Stage::Remaining;
        bool UseMatches =
            R.warnings()[I].Use->parentMethod()->qualifiedName() ==
            Seed.UseMethod;
        int Score = (Remaining ? 2 : 0) + (UseMatches ? 1 : 0);
        if (Score > BestScore) {
          BestScore = Score;
          Found = &R.warnings()[I];
          Verdict = &R.Pipeline.Verdicts[I];
        }
      }
      if (!Found) {
        ++Missed;
      } else if (Verdict->StageReached !=
                 filters::WarningVerdict::Stage::Remaining) {
        ++Pruned;
        for (const filters::PairDecision &D : Verdict->Decisions) {
          if (D.Prov == filters::Provenance::Proved &&
              !filters::isSoundFilter(D.By))
            ++Proved;
          else if (D.Prov == filters::Provenance::Assumed)
            ++Assumed;
        }
      }
      if (Found && Explorer.tryWitness(Found->Use, Found->Free, 100)) {
        ++Witnessed;
      } else if (!Found) {
        // Missed by detection: the detector produced no sites, so aim the
        // directed explorer at the seed's own load/store statements.
        const ir::LoadStmt *Use = nullptr;
        const ir::StoreStmt *Free = nullptr;
        for (const auto &C : App.Prog->classes())
          for (const auto &M : C->methods())
            ir::forEachStmt(*M, [&](const ir::Stmt &S) {
              if (const auto *L = dyn_cast<ir::LoadStmt>(&S)) {
                if (L->field()->qualifiedName() == Seed.FieldName &&
                    M->qualifiedName() == Seed.UseMethod)
                  Use = L;
              } else if (const auto *St = dyn_cast<ir::StoreStmt>(&S)) {
                if (St->isNullStore() &&
                    St->field()->qualifiedName() == Seed.FieldName)
                  Free = St;
              }
            });
        if (Use && Free && Explorer.tryWitness(Use, Free, 100))
          ++Witnessed;
      }
    }

    unsigned All = Spec.total();
    TotAll += All;
    TotMissed += Missed;
    TotPruned += Pruned;
    TotProved += Proved;
    TotAssumed += Assumed;
    TotWitnessed += Witnessed;
    auto Cell = [&](report::PairType T) {
      return TableWriter::cell(ByType.count(T) ? ByType[T] : 0);
    };
    Table.addRow({Spec.App, Cell(report::PairType::EcEc),
                  Cell(report::PairType::EcPc), Cell(report::PairType::PcPc),
                  Cell(report::PairType::CRt), Cell(report::PairType::CNt),
                  TableWriter::cell(All), TableWriter::cell(Missed),
                  TableWriter::cell(Pruned), TableWriter::cell(Proved),
                  TableWriter::cell(Assumed),
                  TableWriter::cell(Witnessed)});
  }

  auto TCell = [&](report::PairType T) {
    return TableWriter::cell(TotByType.count(T) ? TotByType[T] : 0);
  };
  Table.addRow({"Total", TCell(report::PairType::EcEc),
                TCell(report::PairType::EcPc), TCell(report::PairType::PcPc),
                TCell(report::PairType::CRt), TCell(report::PairType::CNt),
                TableWriter::cell(TotAll), TableWriter::cell(TotMissed),
                TableWriter::cell(TotPruned), TableWriter::cell(TotProved),
                TableWriter::cell(TotAssumed),
                TableWriter::cell(TotWitnessed)});

  std::cout << "Table 2: false-negative analysis with injected UAFs\n"
            << "(paper: 28 injected; 2 missed by detection; 3 pruned by "
               "the unsound CHB filter)\n"
            << "(Proved/Assumed: --refute provenance of the wrongly "
               "pruned injections — the refuter demotes all of them)\n\n";
  Table.print(std::cout);
  return 0;
}
