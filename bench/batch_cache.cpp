//===- bench/batch_cache.cpp - Result-cache cold/warm benchmark -----------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The persistent result cache's value proposition, measured: export the
// 27-app corpus, run --batch cold (empty cache, everything analyzed and
// stored), run it warm (everything restored), and emit one schema-stable
// JSON object — BENCH_batch.json in CI — tracking the wall-time split,
// the hit rate, and the cold run's per-phase timings over time. The
// reports must be byte-identical between the two runs; a mismatch is a
// correctness failure, not a slow benchmark, and exits nonzero.
//
// Output schema (keep stable — CI commits this file on main and its
// history is the trend line):
//   {"apps": N, "jobs": N, "coldWallSec": F, "warmWallSec": F,
//    "speedup": F, "cacheHits": N, "cacheMisses": N, "cacheStores": N,
//    "hitRate": F, "reportsIdentical": B,
//    "phases": {"modelingSec": F, "detectionSec": F, "filteringSec": F,
//               "modelingCpuSec": F, "modelingWallSec": F,
//               "detectionCpuSec": F, "detectionWallSec": F,
//               "filteringCpuSec": F, "filteringWallSec": F},
//    "filtering": {"MHBSec": F, "IGSec": F, "IASec": F, "RHBSec": F,
//                  "CHBSec": F, "PHBSec": F, "MASec": F, "URSec": F,
//                  "TTSec": F},
//    "sharded": {"shards": 3, "coldWallSec": F, "warmWallSec": F,
//                "mergeIdentical": B, "warmHits": N, "warmMisses": N,
//                "backend": S, "transportFailures": N}}
//
// The "sharded" object replays the same corpus as three --shard slices
// against a fresh cache (cold, then warm), folds the three checkpoint
// logs with mergeShardLogs, and records whether the merged text report
// is byte-identical to the unsharded cold run's — the distributed-batch
// contract, asserted here and again by the CI fan-in job.
//
// The "filtering" object splits filteringCpuSec by filter kind (per-pair
// verdict self-time, summed over the cold run's apps); refuter time and
// sweep overhead belong to no single filter, so the entries sum to less
// than filteringCpuSec.
//
// The bare *Sec keys predate the CPU/wall split and always summed the
// per-lane phase timings; they are kept equal to the *CpuSec values so
// the committed trend line stays comparable. The *WallSec values are the
// union of the phase intervals on the batch clock and, unlike the sums,
// can never exceed coldWallSec on a parallel run.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "ir/Printer.h"
#include "report/Batch.h"
#include "report/Json.h"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace nadroid;
namespace fs = std::filesystem;

int main() {
  std::error_code Ec;
  fs::path Dir = fs::temp_directory_path(Ec) / "nadroid-batch-cache-corpus";
  fs::path CacheDir = fs::temp_directory_path(Ec) / "nadroid-batch-cache-store";
  fs::remove_all(Dir, Ec);
  fs::remove_all(CacheDir, Ec);
  fs::create_directories(Dir, Ec);

  unsigned Written = 0;
  for (const corpus::Recipe &R : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(R);
    std::ofstream Out(Dir / (R.Name + ".air"));
    if (!Out)
      continue;
    ir::printProgram(*App.Prog, Out);
    ++Written;
  }

  report::BatchOptions O;
  O.Dir = Dir.string();
  O.Jobs = 4;
  O.CacheDir = CacheDir.string();

  report::BatchResult Cold = report::runBatch(O);
  report::BatchResult Warm = report::runBatch(O);
  bool Identical =
      report::renderBatchReport(Cold) == report::renderBatchReport(Warm);

  // The same corpus as three deterministic shards against a fresh cache:
  // cold fan-out, warm fan-out, then the merge that a distributed run
  // would perform on the collected checkpoint logs.
  constexpr unsigned Shards = 3;
  fs::path ShardCacheDir =
      fs::temp_directory_path(Ec) / "nadroid-batch-cache-shard-store";
  fs::remove_all(ShardCacheDir, Ec);
  double ShardColdSec = 0, ShardWarmSec = 0;
  unsigned ShardWarmHits = 0, ShardWarmMisses = 0, ShardFailures = 0;
  std::string Backend = "dir";
  std::vector<std::string> ShardLogs;
  for (unsigned I = 1; I <= Shards; ++I) {
    report::BatchOptions SO = O;
    SO.CacheDir = ShardCacheDir.string();
    SO.ShardIndex = I;
    SO.ShardCount = Shards;
    SO.LogPath =
        (Dir / ("shard" + std::to_string(I) + ".jsonl")).string();
    ShardLogs.push_back(SO.LogPath);
    report::BatchResult SCold = report::runBatch(SO);
    ShardColdSec += SCold.WallSec;
    report::BatchResult SWarm = report::runBatch(SO);
    ShardWarmSec += SWarm.WallSec;
    ShardWarmHits += SWarm.CacheHits;
    ShardWarmMisses += SWarm.CacheMisses;
    ShardFailures += SWarm.CacheTransportFailures;
    Backend = SWarm.CacheBackend;
  }
  report::MergeShardsResult MR = report::mergeShardLogs(ShardLogs);
  bool MergeIdentical =
      MR.ok() &&
      report::renderBatchReport(MR.Merged) == report::renderBatchReport(Cold);

  report::BatchPhaseTotals Phases = report::batchPhaseTotals(Cold);
  unsigned Probed = Warm.CacheHits + Warm.CacheMisses;
  double HitRate = Probed ? static_cast<double>(Warm.CacheHits) / Probed : 0.0;
  double Speedup = Warm.WallSec > 0 ? Cold.WallSec / Warm.WallSec : 0.0;

  std::cout << "{\"apps\": " << Written << ", \"jobs\": " << Cold.Jobs
            << ", \"coldWallSec\": " << report::jsonFixed(Cold.WallSec, 3)
            << ", \"warmWallSec\": " << report::jsonFixed(Warm.WallSec, 3)
            << ", \"speedup\": " << report::jsonFixed(Speedup, 1)
            << ", \"cacheHits\": " << Warm.CacheHits
            << ", \"cacheMisses\": " << Warm.CacheMisses
            << ", \"cacheStores\": " << Cold.CacheStores
            << ", \"hitRate\": " << report::jsonFixed(HitRate, 3)
            << ", \"reportsIdentical\": " << (Identical ? "true" : "false")
            << ", \"phases\": {\"modelingSec\": "
            << report::jsonFixed(Phases.ModelingCpuSec, 3)
            << ", \"detectionSec\": "
            << report::jsonFixed(Phases.DetectionCpuSec, 3)
            << ", \"filteringSec\": "
            << report::jsonFixed(Phases.FilteringCpuSec, 3)
            << ", \"modelingCpuSec\": "
            << report::jsonFixed(Phases.ModelingCpuSec, 3)
            << ", \"modelingWallSec\": "
            << report::jsonFixed(Phases.ModelingWallSec, 3)
            << ", \"detectionCpuSec\": "
            << report::jsonFixed(Phases.DetectionCpuSec, 3)
            << ", \"detectionWallSec\": "
            << report::jsonFixed(Phases.DetectionWallSec, 3)
            << ", \"filteringCpuSec\": "
            << report::jsonFixed(Phases.FilteringCpuSec, 3)
            << ", \"filteringWallSec\": "
            << report::jsonFixed(Phases.FilteringWallSec, 3)
            << "}, \"filtering\": {";
  for (size_t I = 0; I < filters::NumFilterKinds; ++I)
    std::cout << (I ? ", " : "") << "\""
              << filters::filterKindName(static_cast<filters::FilterKind>(I))
              << "Sec\": " << report::jsonFixed(Phases.FilterCpuSec[I], 3);
  std::cout << "}, \"sharded\": {\"shards\": " << Shards
            << ", \"coldWallSec\": " << report::jsonFixed(ShardColdSec, 3)
            << ", \"warmWallSec\": " << report::jsonFixed(ShardWarmSec, 3)
            << ", \"mergeIdentical\": " << (MergeIdentical ? "true" : "false")
            << ", \"warmHits\": " << ShardWarmHits
            << ", \"warmMisses\": " << ShardWarmMisses << ", \"backend\": \""
            << Backend << "\", \"transportFailures\": " << ShardFailures
            << "}}\n";

  fs::remove_all(Dir, Ec);
  fs::remove_all(CacheDir, Ec);
  fs::remove_all(ShardCacheDir, Ec);

  // A cold/warm report divergence, a non-total hit rate, or a sharded
  // merge that fails to reproduce the unsharded bytes is a bug.
  return (Identical && Warm.CacheHits == Written && MergeIdentical &&
          ShardWarmHits == Written)
             ? 0
             : 1;
}
