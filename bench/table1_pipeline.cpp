//===- bench/table1_pipeline.cpp - Regenerate Table 1 -------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's Table 1: for all 27 corpus apps, the pipeline's
// potential / after-sound / after-unsound warning counts, the pair-type
// breakdown of the remaining warnings, interpreter-confirmed true harmful
// UAFs, and the §8.5 false-positive attribution. Paper reference values
// are printed alongside (absolute mass is scaled; see EXPERIMENTS.md).
//
// Usage: table1_pipeline [--fast] [--csv] [app-name...]
//   --fast  skip interpreter confirmation (seeded ground truth instead)
//   --csv   emit CSV instead of the aligned table
//
//===----------------------------------------------------------------------===//

#include "corpus/Evaluate.h"
#include "support/TableWriter.h"

#include <cstring>
#include <iostream>

using namespace nadroid;
using corpus::SeedKind;

static unsigned typeCount(const corpus::AppEvaluation &E,
                          report::PairType T) {
  auto It = E.RemainingByType.find(T);
  return It == E.RemainingByType.end() ? 0 : It->second;
}

static unsigned seedCount(const corpus::AppEvaluation &E, SeedKind K) {
  auto It = E.FalseBySeed.find(K);
  return It == E.FalseBySeed.end() ? 0 : It->second;
}

int main(int argc, char **argv) {
  bool Fast = false, Csv = false;
  std::vector<std::string> Only;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--fast"))
      Fast = true;
    else if (!std::strcmp(argv[I], "--csv"))
      Csv = true;
    else
      Only.push_back(argv[I]);
  }

  TableWriter Table({"Type",   "APP",    "LOC",   "EC",    "PC",
                     "T",      "Pot",    "Sound", "Unsnd", "EC-EC",
                     "EC-PC",  "PC-PC",  "C-RT",  "C-NT",  "True",
                     "FPpath", "FPpts",  "FPnr",  "FPhb",  "Pot(paper)",
                     "Snd(p)", "Uns(p)", "True(p)"});

  unsigned TotalTrue = 0;
  for (const corpus::Recipe &R : corpus::allRecipes()) {
    if (!Only.empty() &&
        std::find(Only.begin(), Only.end(), R.Name) == Only.end())
      continue;
    corpus::CorpusApp App = corpus::buildApp(R);
    corpus::EvaluateOptions Opts;
    Opts.RunInterpreter = !Fast;
    corpus::AppEvaluation E = corpus::evaluateApp(App, Opts);
    TotalTrue += E.TrueHarmful;

    Table.addRow({
        E.Train ? "Train" : "Test",
        E.Name,
        TableWriter::cell(E.Loc),
        TableWriter::cell(E.Ec),
        TableWriter::cell(E.Pc),
        TableWriter::cell(E.T),
        TableWriter::cell(E.Potential),
        TableWriter::cell(E.AfterSound),
        TableWriter::cell(E.AfterUnsound),
        TableWriter::cell(typeCount(E, report::PairType::EcEc)),
        TableWriter::cell(typeCount(E, report::PairType::EcPc)),
        TableWriter::cell(typeCount(E, report::PairType::PcPc)),
        TableWriter::cell(typeCount(E, report::PairType::CRt)),
        TableWriter::cell(typeCount(E, report::PairType::CNt)),
        TableWriter::cell(E.TrueHarmful),
        TableWriter::cell(seedCount(E, SeedKind::FpPathInsens)),
        TableWriter::cell(seedCount(E, SeedKind::FpPointsTo)),
        TableWriter::cell(seedCount(E, SeedKind::FpNotReach)),
        TableWriter::cell(seedCount(E, SeedKind::FpMissingHb)),
        TableWriter::cell(E.Paper.Potential),
        TableWriter::cell(E.Paper.AfterSound),
        TableWriter::cell(E.Paper.AfterUnsound),
        TableWriter::cell(E.Paper.TrueHarmful),
    });
    if (E.Unattributed)
      std::cerr << "note: " << E.Name << " has " << E.Unattributed
                << " unattributed remaining warnings\n";
  }

  std::cout << "Table 1: nAdroid UAF analysis over the 27-app corpus\n\n";
  if (Csv)
    Table.printCsv(std::cout);
  else
    Table.print(std::cout);
  std::cout << "\nTotal true harmful UAFs: " << TotalTrue
            << " (paper: 88)\n";
  return 0;
}
