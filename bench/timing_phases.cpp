//===- bench/timing_phases.cpp - §8.8 phase timing ------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the §8.8 execution-time analysis: the pipeline splits into
// modeling (threadification), static detection (points-to + racy pairs),
// and filtering. The paper reports modeling ≈1.2%, detection ≈95.7%,
// filtering ≈3.1% — detection dominates. Run on the largest corpus apps
// via google-benchmark, plus an aggregate percentage report.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "pipeline/AnalysisManager.h"
#include "report/Nadroid.h"

#include <benchmark/benchmark.h>

using namespace nadroid;

namespace {

/// One manager per app, shared across the phase benchmarks. Each phase
/// invalidates exactly the pass it times, so everything upstream stays
/// cached — the same demand/invalidate machinery the CLI uses, now as
/// the measurement harness.
struct BenchApp {
  corpus::CorpusApp App;
  std::unique_ptr<pipeline::AnalysisManager> AM;
};

BenchApp &appNamed(const std::string &Name) {
  static std::map<std::string, BenchApp> Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end()) {
    BenchApp B;
    B.App = corpus::buildAppNamed(Name);
    B.AM = std::make_unique<pipeline::AnalysisManager>(*B.App.Prog);
    It = Cache.emplace(Name, std::move(B)).first;
  }
  return It->second;
}

void BM_Modeling(benchmark::State &State, const std::string &Name) {
  pipeline::AnalysisManager &AM = *appNamed(Name).AM;
  AM.apis(); // built outside the timed region
  for (auto _ : State) {
    AM.invalidate<pipeline::ThreadForestPass>();
    benchmark::DoNotOptimize(AM.forest().threads().size());
  }
}

void BM_Detection(benchmark::State &State, const std::string &Name) {
  pipeline::AnalysisManager &AM = *appNamed(Name).AM;
  AM.forest();
  for (auto _ : State) {
    // Dropping points-to cascades through reach and detection; the
    // forest and API index stay cached, so this times detection alone.
    AM.invalidate<pipeline::PointsToPass>();
    benchmark::DoNotOptimize(AM.detection().Warnings.size());
  }
}

void BM_Filtering(benchmark::State &State, const std::string &Name) {
  pipeline::AnalysisManager &AM = *appNamed(Name).AM;
  AM.detection();
  for (auto _ : State) {
    // Nullness first (its lazy edge drops the context), then the
    // context itself in case no filter ever asked for nullness. The
    // per-method guard/alloc caches stay warm, as they do in the real
    // pipeline.
    AM.invalidate<pipeline::NullnessPass>();
    AM.invalidate<pipeline::FilterContextPass>();
    benchmark::DoNotOptimize(AM.verdicts().RemainingAfterUnsound);
  }
}

void BM_FullPipeline(benchmark::State &State, const std::string &Name) {
  const corpus::CorpusApp &App = appNamed(Name).App;
  for (auto _ : State) {
    report::NadroidResult R = report::analyzeProgram(*App.Prog);
    benchmark::DoNotOptimize(R.Pipeline.RemainingAfterUnsound);
  }
}

void registerFor(const std::string &Name) {
  benchmark::RegisterBenchmark(("modeling/" + Name).c_str(), BM_Modeling,
                               Name)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(("detection/" + Name).c_str(), BM_Detection,
                               Name)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(("filtering/" + Name).c_str(), BM_Filtering,
                               Name)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(("full/" + Name).c_str(), BM_FullPipeline,
                               Name)
      ->Unit(benchmark::kMillisecond);
}

void printPhaseShares() {
  // Aggregate wall-clock shares over the whole corpus, paper-style.
  double Modeling = 0, Detection = 0, Filtering = 0;
  for (const corpus::Recipe &R : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(R);
    report::NadroidResult Result = report::analyzeProgram(*App.Prog);
    Modeling += Result.Timings.ModelingSec;
    Detection += Result.Timings.DetectionSec;
    Filtering += Result.Timings.FilteringSec;
  }
  double Total = Modeling + Detection + Filtering;
  std::printf("\nPhase split over the 27-app corpus (paper: modeling "
              "1.19%%, detection 95.73%%, filtering 3.08%%):\n");
  std::printf("  modeling : %6.2f%%\n", 100.0 * Modeling / Total);
  std::printf("  detection: %6.2f%%\n", 100.0 * Detection / Total);
  std::printf("  filtering: %6.2f%%\n", 100.0 * Filtering / Total);
}

} // namespace

int main(int argc, char **argv) {
  for (const char *Name : {"K9Mail", "Browser", "Music", "ConnectBot"})
    registerFor(Name);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printPhaseShares();
  return 0;
}
