//===- bench/timing_phases.cpp - §8.8 phase timing ------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the §8.8 execution-time analysis: the pipeline splits into
// modeling (threadification), static detection (points-to + racy pairs),
// and filtering. The paper reports modeling ≈1.2%, detection ≈95.7%,
// filtering ≈3.1% — detection dominates. Run on the largest corpus apps
// via google-benchmark, plus an aggregate percentage report.
//
//===----------------------------------------------------------------------===//

#include "analysis/ThreadReach.h"
#include "corpus/Corpus.h"
#include "filters/Engine.h"
#include "race/Detector.h"
#include "report/Nadroid.h"
#include "threadify/Threadifier.h"

#include <benchmark/benchmark.h>

using namespace nadroid;

namespace {

const corpus::CorpusApp &appNamed(const std::string &Name) {
  static std::map<std::string, corpus::CorpusApp> Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end())
    It = Cache.emplace(Name, corpus::buildAppNamed(Name)).first;
  return It->second;
}

void BM_Modeling(benchmark::State &State, const std::string &Name) {
  const corpus::CorpusApp &App = appNamed(Name);
  android::ApiIndex Apis(*App.Prog);
  for (auto _ : State) {
    threadify::ThreadForest Forest = threadify::threadify(*App.Prog);
    benchmark::DoNotOptimize(Forest.threads().size());
  }
}

void BM_Detection(benchmark::State &State, const std::string &Name) {
  const corpus::CorpusApp &App = appNamed(Name);
  android::ApiIndex Apis(*App.Prog);
  threadify::ThreadForest Forest = threadify::threadify(*App.Prog);
  for (auto _ : State) {
    analysis::PointsToAnalysis PTA(*App.Prog, Forest, Apis);
    PTA.run();
    analysis::ThreadReach Reach(PTA, Forest);
    race::DetectorResult Detection =
        race::detectUafWarnings(Forest, PTA, Reach);
    benchmark::DoNotOptimize(Detection.Warnings.size());
  }
}

void BM_Filtering(benchmark::State &State, const std::string &Name) {
  const corpus::CorpusApp &App = appNamed(Name);
  android::ApiIndex Apis(*App.Prog);
  threadify::ThreadForest Forest = threadify::threadify(*App.Prog);
  analysis::PointsToAnalysis PTA(*App.Prog, Forest, Apis);
  PTA.run();
  analysis::ThreadReach Reach(PTA, Forest);
  race::DetectorResult Detection =
      race::detectUafWarnings(Forest, PTA, Reach);
  for (auto _ : State) {
    filters::FilterContext Ctx(*App.Prog, Forest, PTA, Reach, Apis);
    filters::FilterEngine Engine(Ctx);
    filters::PipelineResult Result = Engine.run(Detection.Warnings);
    benchmark::DoNotOptimize(Result.RemainingAfterUnsound);
  }
}

void BM_FullPipeline(benchmark::State &State, const std::string &Name) {
  const corpus::CorpusApp &App = appNamed(Name);
  for (auto _ : State) {
    report::NadroidResult R = report::analyzeProgram(*App.Prog);
    benchmark::DoNotOptimize(R.Pipeline.RemainingAfterUnsound);
  }
}

void registerFor(const std::string &Name) {
  benchmark::RegisterBenchmark(("modeling/" + Name).c_str(), BM_Modeling,
                               Name)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(("detection/" + Name).c_str(), BM_Detection,
                               Name)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(("filtering/" + Name).c_str(), BM_Filtering,
                               Name)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(("full/" + Name).c_str(), BM_FullPipeline,
                               Name)
      ->Unit(benchmark::kMillisecond);
}

void printPhaseShares() {
  // Aggregate wall-clock shares over the whole corpus, paper-style.
  double Modeling = 0, Detection = 0, Filtering = 0;
  for (const corpus::Recipe &R : corpus::allRecipes()) {
    corpus::CorpusApp App = corpus::buildApp(R);
    report::NadroidResult Result = report::analyzeProgram(*App.Prog);
    Modeling += Result.Timings.ModelingSec;
    Detection += Result.Timings.DetectionSec;
    Filtering += Result.Timings.FilteringSec;
  }
  double Total = Modeling + Detection + Filtering;
  std::printf("\nPhase split over the 27-app corpus (paper: modeling "
              "1.19%%, detection 95.73%%, filtering 3.08%%):\n");
  std::printf("  modeling : %6.2f%%\n", 100.0 * Modeling / Total);
  std::printf("  detection: %6.2f%%\n", 100.0 * Detection / Total);
  std::printf("  filtering: %6.2f%%\n", 100.0 * Filtering / Total);
}

} // namespace

int main(int argc, char **argv) {
  for (const char *Name : {"K9Mail", "Browser", "Music", "ConnectBot"})
    registerFor(Name);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printPhaseShares();
  return 0;
}
