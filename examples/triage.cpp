//===- examples/triage.cpp - A full triage workflow --------------------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// The developer-facing workflow the paper's §7 sketches, end to end on a
// corpus app (MyTracks_2, 27 real bugs among noise):
//
//   1. run the pipeline;
//   2. review warnings in the ranked order (§6.2/§7): remaining first,
//      ordered by suspicion (C-NT > C-RT > PC-PC > EC-PC > EC-EC);
//   3. for the top-ranked warnings, ask the schedule explorer for a
//      concrete crashing schedule — the automated version of the paper's
//      manual validation;
//   4. export the thread forest + races as Graphviz for the report.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "interp/Interp.h"
#include "report/Dot.h"
#include "report/Rank.h"

#include <iostream>

using namespace nadroid;

int main() {
  corpus::CorpusApp App = corpus::buildAppNamed("MyTracks_2");
  const ir::Program &P = *App.Prog;

  // 1. Analyze.
  report::NadroidResult R = report::analyzeProgram(P);
  std::cout << "MyTracks_2: " << report::summaryLine(R) << "\n\n";

  // 2. Ranked review order.
  std::vector<report::RankedWarning> Ranked = report::rankWarnings(R);
  std::cout << "review order (first 10 of " << Ranked.size() << "):\n";
  for (size_t I = 0; I < Ranked.size() && I < 10; ++I)
    std::cout << "  " << report::renderRankedLine(R, Ranked[I], I + 1)
              << "\n";

  // 3. Validate the top three with concrete schedules.
  interp::ScheduleExplorer Explorer(P);
  std::cout << "\nvalidating the top 3:\n";
  for (size_t I = 0; I < Ranked.size() && I < 3; ++I) {
    const race::UafWarning &W = R.warnings()[Ranked[I].Index];
    std::cout << "\n" << report::renderWarning(R, Ranked[I].Index, P);
    interp::WitnessSchedule Schedule;
    if (Explorer.tryWitness(W.Use, W.Free, 60, &Schedule)) {
      std::cout << "  crashing schedule:\n";
      for (const std::string &Step : Schedule.Activations)
        std::cout << "    " << Step << "\n";
      std::cout << "    *** NullPointerException at: "
                << Schedule.CrashSite << "\n";
    } else {
      std::cout << "  no crashing schedule found (likely a false "
                   "positive)\n";
    }
  }

  // 4. Graphviz export (pipe into `dot -Tsvg` to render).
  std::string Dot = report::analysisToDot(R);
  std::cout << "\nthread forest DOT: " << Dot.size()
            << " bytes (print with --dot in the CLI)\n";
  return 0;
}
