//===- examples/firefox_uaf.cpp - Figure 1(c) walk-through ----------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's FireFox case study (Figure 1(c)): a
// callback-vs-thread UAF where an if-guard gives no protection because
// nothing makes the check and the use atomic against the background
// thread. Shows why the IG filter correctly refuses to prune it (no
// common lock), then demonstrates the fix: a shared monitor.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "report/Nadroid.h"

#include <iostream>

using namespace nadroid;

namespace {

/// The fixed variant: both sides synchronize on the client's lock, so the
/// IG filter can prove the guarded use safe.
const char *FixedSource = R"(
app "firefox_fixed";
manifest GeckoApp;

class GeckoClient : Plain {
  method abort() {
    return;
  }
}

class ShutdownJob : Thread {
  field act : GeckoApp;
  method run() {
    a = this.act;
    l = a.lock;
    synchronized (l) {
      a.jClient = null;
    }
  }
}

class GeckoApp : Activity {
  field jClient : GeckoClient;
  field lock : GeckoClient;

  method onCreate() {
    c = new GeckoClient;
    this.jClient = c;
    m = new GeckoClient;
    this.lock = m;
  }

  method onResume() {
    t = new ShutdownJob;
    t.act = this;
    t.start();
  }

  method onPause() {
    l = this.lock;
    synchronized (l) {
      g = this.jClient;
      if (g != null) {
        u = this.jClient;
        u.abort();
      }
    }
  }
}
)";

void analyze(const ir::Program &P, const char *Label) {
  report::NadroidResult R = report::analyzeProgram(P);
  std::cout << Label << ": " << report::summaryLine(R) << "\n";
  interp::ScheduleExplorer Explorer(P);
  for (size_t I : R.remainingIndices()) {
    std::cout << report::renderWarning(R, I, P);
    const race::UafWarning &W = R.warnings()[I];
    std::cout << "  dynamic validation: "
              << (Explorer.tryWitness(W.Use, W.Free, 60)
                      ? "CONFIRMED (thread frees between check and use)"
                      : "not witnessed")
              << "\n";
  }
  std::cout << "\n";
}

} // namespace

int main(int argc, char **argv) {
  std::string Path = argc > 1 ? argv[1] : "examples/apps/firefox.air";
  frontend::ParseResult Buggy = frontend::parseProgramFile(Path);
  if (!Buggy.Success) {
    for (const Diagnostic &D : Buggy.Diags)
      std::cerr << D.Message << "\n";
    std::cerr << "hint: run from the repository root or pass the .air "
                 "path\n";
    return 1;
  }
  analyze(*Buggy.Prog, "FireFox (Figure 1(c), buggy)");

  frontend::ParseResult Fixed =
      frontend::parseProgramText(FixedSource, "firefox_fixed.air",
                                 "firefox_fixed");
  if (Fixed.Success)
    analyze(*Fixed.Prog, "FireFox (locked variant — IG filter applies)");
  return 0;
}
