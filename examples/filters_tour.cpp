//===- examples/filters_tour.cpp - Figure 4 filter exemplars -------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// A tour of §6's filters using the corpus pattern vocabulary (Figure 4's
// (a)-(g) shapes plus MHB-Lifecycle/AsyncTask and TT): each pattern is
// built in its own program, the pipeline runs, and the example prints
// which filter disposed of each warning — or that it survived, for the
// genuinely harmful control.
//
//===----------------------------------------------------------------------===//

#include "corpus/Patterns.h"
#include "ir/IRBuilder.h"
#include "report/Nadroid.h"

#include <functional>
#include <iostream>

using namespace nadroid;

namespace {

void demo(const char *Label, const char *Expectation,
          const std::function<void(corpus::PatternEmitter &)> &Emit) {
  ir::Program P("tour");
  ir::IRBuilder B(P);
  corpus::PatternEmitter E(B);
  Emit(E);

  report::NadroidResult R = report::analyzeProgram(P);
  std::cout << Label << " — expected: " << Expectation << "\n";
  for (size_t I = 0; I < R.warnings().size(); ++I) {
    const filters::WarningVerdict &V = R.Pipeline.Verdicts[I];
    std::cout << "  " << R.warnings()[I].key() << " -> ";
    switch (V.StageReached) {
    case filters::WarningVerdict::Stage::PrunedBySound:
      std::cout << "pruned (sound:";
      break;
    case filters::WarningVerdict::Stage::PrunedByUnsound:
      std::cout << "pruned (unsound:";
      break;
    case filters::WarningVerdict::Stage::Remaining:
      std::cout << "REMAINING — reported to the programmer";
      break;
    }
    if (V.StageReached != filters::WarningVerdict::Stage::Remaining) {
      for (filters::FilterKind Kind : V.FiredFilters)
        std::cout << " " << filters::filterKindName(Kind);
      std::cout << ")";
    }
    std::cout << "\n";
  }
  if (R.warnings().empty())
    std::cout << "  (no potential warnings at all)\n";
  std::cout << "\n";
}

} // namespace

int main() {
  std::cout << "=== §6 filter tour ===\n\n";

  demo("Figure 4(a) — use inside onServiceConnected",
       "MHB-Service prunes (connect always precedes disconnect)",
       [](corpus::PatternEmitter &E) { E.falseMhbService(1); });

  demo("MHB-Lifecycle — free in onDestroy",
       "MHB prunes (every entry callback precedes onDestroy)",
       [](corpus::PatternEmitter &E) { E.falseMhbLifecycle(1); });

  demo("MHB-AsyncTask — doInBackground uses, onPostExecute frees",
       "MHB prunes (framework task ordering)",
       [](corpus::PatternEmitter &E) { E.falseMhbAsync(); });

  demo("Figure 4(b) — null-checked use between looper callbacks",
       "IG prunes (callbacks of one looper are atomic)",
       [](corpus::PatternEmitter &E) { E.falseIg(1); });

  demo("§8.7 — caller checks, this-called helper dereferences",
       "IG prunes via the inter-procedural nullness analysis "
       "(Remaining under --syntactic-filters)",
       [](corpus::PatternEmitter &E) { E.falseIgInterproc(); });

  demo("Figure 4(c) — allocation dominates the use",
       "IA prunes", [](corpus::PatternEmitter &E) { E.falseIa(1); });

  demo("Figure 4(d) benign form — onResume re-allocates",
       "RHB prunes (unsound may-analysis)",
       [](corpus::PatternEmitter &E) { E.falseRhb(); });

  demo("Figure 4(e) — the freeing callback calls finish()",
       "CHB prunes (no UI events after finish)",
       [](corpus::PatternEmitter &E) { E.falseChb(); });

  demo("Figure 4(f) — poster uses, postee frees",
       "PHB prunes (poster completes before postee)",
       [](corpus::PatternEmitter &E) { E.falsePhb(); });

  demo("Getter-backed allocation", "MA prunes (getters assumed non-null)",
       [](corpus::PatternEmitter &E) { E.falseMa(); });

  demo("Figure 4(g) — value only flows to a call argument",
       "UR prunes (benign use)",
       [](corpus::PatternEmitter &E) { E.falseUr(1); });

  demo("Two native threads, no looper involved",
       "TT prunes (conventional race, out of scope)",
       [](corpus::PatternEmitter &E) { E.falseTt(); });

  demo("Control — Figure 1(a)-style harmful UAF",
       "survives every filter",
       [](corpus::PatternEmitter &E) { E.harmfulEcPc(); });

  return 0;
}
