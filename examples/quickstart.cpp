//===- examples/quickstart.cpp - Five-minute tour of the API -------------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: build a tiny Android app in AIR with the IRBuilder, run the
// whole nAdroid pipeline (threadify → detect → filter), print the report,
// and confirm the bug with the schedule-exploring interpreter.
//
// The app has a classic single-looper ordering violation: onClick uses a
// field that onCreateOptionsMenu frees, and nothing orders the two UI
// events.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "report/Nadroid.h"

#include <iostream>

using namespace nadroid;

int main() {
  // 1. Build the program. (Everything here can also be written as an
  //    .air text file and parsed with frontend::parseProgramFile.)
  ir::Program P("quickstart");
  ir::IRBuilder B(P);

  ir::Clazz *Session = B.makeClass("Session", ir::ClassKind::Plain);
  B.makeMethod(Session, "use");
  B.emitReturn();

  ir::Clazz *Main = B.makeClass("MainActivity", ir::ClassKind::Activity);
  ir::Field *F = B.addField(Main, "session", Session);
  P.addManifestComponent(Main);

  B.makeMethod(Main, "onCreate");
  ir::Local *S = B.emitNew("s", Session);
  B.emitStore(B.thisLocal(), F, S);

  B.makeMethod(Main, "onClick"); // uses the session
  ir::Local *U = B.local("u");
  B.emitLoad(U, B.thisLocal(), F);
  B.emitCall(nullptr, U, "use");

  B.makeMethod(Main, "onCreateOptionsMenu"); // frees it
  B.emitStore(B.thisLocal(), F, nullptr);

  std::cout << "=== AIR program ===\n" << ir::programToString(P) << "\n";

  // 2. Run the pipeline.
  report::NadroidResult R = report::analyzeProgram(P);
  std::cout << "=== Analysis ===\n" << report::summaryLine(R) << "\n\n";
  for (size_t I : R.remainingIndices())
    std::cout << report::renderWarning(R, I, P);

  // 3. Confirm the warning dynamically: search for a schedule that
  //    dereferences the freed field.
  interp::ScheduleExplorer Explorer(P);
  for (size_t I : R.remainingIndices()) {
    const race::UafWarning &W = R.warnings()[I];
    bool Confirmed = Explorer.tryWitness(W.Use, W.Free, 60);
    std::cout << "\ninterpreter: "
              << (Confirmed ? "CONFIRMED — menu-then-click crashes with "
                              "a NullPointerException"
                            : "no crashing schedule found")
              << "\n";
  }
  return 0;
}
