//===- examples/connectbot_uaf.cpp - Figure 1 (a)/(b) walk-through -------------===//
//
// Part of the nAdroid reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's ConnectBot case study (Figure 1 (a) and (b)):
// parses examples/apps/connectbot.air, shows the threadified forest, the
// two harmful warnings (one EC-PC, one PC-PC), and confirms both with
// crashing schedules.
//
// Run from the repository root (the input path is relative), or pass the
// .air path as argv[1].
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "report/Nadroid.h"

#include <iostream>

using namespace nadroid;

int main(int argc, char **argv) {
  std::string Path =
      argc > 1 ? argv[1] : "examples/apps/connectbot.air";
  frontend::ParseResult Parsed = frontend::parseProgramFile(Path);
  if (!Parsed.Success) {
    for (const Diagnostic &D : Parsed.Diags)
      std::cerr << D.Message << "\n";
    std::cerr << "hint: run from the repository root or pass the .air "
                 "path\n";
    return 1;
  }
  const ir::Program &P = *Parsed.Prog;

  report::NadroidResult R = report::analyzeProgram(P);
  std::cout << "ConnectBot (Figure 1 (a)/(b)): " << report::summaryLine(R)
            << "\n\nThreadified forest:\n";
  for (const auto &T : R.Forest->threads())
    std::cout << "  " << R.Forest->lineage(T.get()) << "\n";

  interp::ScheduleExplorer Explorer(P);
  std::cout << "\nRemaining warnings:\n\n";
  for (size_t I : R.remainingIndices()) {
    std::cout << report::renderWarning(R, I, P);
    const race::UafWarning &W = R.warnings()[I];
    std::cout << "  dynamic validation: "
              << (Explorer.tryWitness(W.Use, W.Free, 60)
                      ? "CONFIRMED (disconnect-first schedule crashes)"
                      : "not witnessed")
              << "\n\n";
  }
  return 0;
}
