file(REMOVE_RECURSE
  "CMakeFiles/nadroid_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/nadroid_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/nadroid_ir.dir/Ir.cpp.o"
  "CMakeFiles/nadroid_ir.dir/Ir.cpp.o.d"
  "CMakeFiles/nadroid_ir.dir/LocalInfo.cpp.o"
  "CMakeFiles/nadroid_ir.dir/LocalInfo.cpp.o.d"
  "CMakeFiles/nadroid_ir.dir/Printer.cpp.o"
  "CMakeFiles/nadroid_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/nadroid_ir.dir/Stmt.cpp.o"
  "CMakeFiles/nadroid_ir.dir/Stmt.cpp.o.d"
  "CMakeFiles/nadroid_ir.dir/Verifier.cpp.o"
  "CMakeFiles/nadroid_ir.dir/Verifier.cpp.o.d"
  "libnadroid_ir.a"
  "libnadroid_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
