# Empty dependencies file for nadroid_ir.
# This may be replaced when dependencies are built.
