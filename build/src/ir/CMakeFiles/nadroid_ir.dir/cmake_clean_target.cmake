file(REMOVE_RECURSE
  "libnadroid_ir.a"
)
