file(REMOVE_RECURSE
  "CMakeFiles/nadroid_deva.dir/Deva.cpp.o"
  "CMakeFiles/nadroid_deva.dir/Deva.cpp.o.d"
  "libnadroid_deva.a"
  "libnadroid_deva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_deva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
