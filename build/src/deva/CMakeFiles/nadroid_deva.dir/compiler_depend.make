# Empty compiler generated dependencies file for nadroid_deva.
# This may be replaced when dependencies are built.
