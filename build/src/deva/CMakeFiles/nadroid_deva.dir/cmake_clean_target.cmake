file(REMOVE_RECURSE
  "libnadroid_deva.a"
)
