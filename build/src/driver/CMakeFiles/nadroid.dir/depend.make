# Empty dependencies file for nadroid.
# This may be replaced when dependencies are built.
