file(REMOVE_RECURSE
  "CMakeFiles/nadroid.dir/Main.cpp.o"
  "CMakeFiles/nadroid.dir/Main.cpp.o.d"
  "nadroid"
  "nadroid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
