file(REMOVE_RECURSE
  "CMakeFiles/nadroid_threadify.dir/ThreadForest.cpp.o"
  "CMakeFiles/nadroid_threadify.dir/ThreadForest.cpp.o.d"
  "CMakeFiles/nadroid_threadify.dir/Threadifier.cpp.o"
  "CMakeFiles/nadroid_threadify.dir/Threadifier.cpp.o.d"
  "libnadroid_threadify.a"
  "libnadroid_threadify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_threadify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
