file(REMOVE_RECURSE
  "libnadroid_threadify.a"
)
