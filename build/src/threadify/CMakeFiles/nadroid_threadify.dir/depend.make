# Empty dependencies file for nadroid_threadify.
# This may be replaced when dependencies are built.
