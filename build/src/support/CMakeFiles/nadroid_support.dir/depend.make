# Empty dependencies file for nadroid_support.
# This may be replaced when dependencies are built.
