file(REMOVE_RECURSE
  "libnadroid_support.a"
)
