file(REMOVE_RECURSE
  "CMakeFiles/nadroid_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/nadroid_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/nadroid_support.dir/SourceLoc.cpp.o"
  "CMakeFiles/nadroid_support.dir/SourceLoc.cpp.o.d"
  "CMakeFiles/nadroid_support.dir/StringUtils.cpp.o"
  "CMakeFiles/nadroid_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/nadroid_support.dir/TableWriter.cpp.o"
  "CMakeFiles/nadroid_support.dir/TableWriter.cpp.o.d"
  "libnadroid_support.a"
  "libnadroid_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
