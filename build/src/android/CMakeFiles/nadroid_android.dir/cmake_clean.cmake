file(REMOVE_RECURSE
  "CMakeFiles/nadroid_android.dir/Api.cpp.o"
  "CMakeFiles/nadroid_android.dir/Api.cpp.o.d"
  "CMakeFiles/nadroid_android.dir/Callbacks.cpp.o"
  "CMakeFiles/nadroid_android.dir/Callbacks.cpp.o.d"
  "CMakeFiles/nadroid_android.dir/SyntacticReach.cpp.o"
  "CMakeFiles/nadroid_android.dir/SyntacticReach.cpp.o.d"
  "libnadroid_android.a"
  "libnadroid_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
