
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/Api.cpp" "src/android/CMakeFiles/nadroid_android.dir/Api.cpp.o" "gcc" "src/android/CMakeFiles/nadroid_android.dir/Api.cpp.o.d"
  "/root/repo/src/android/Callbacks.cpp" "src/android/CMakeFiles/nadroid_android.dir/Callbacks.cpp.o" "gcc" "src/android/CMakeFiles/nadroid_android.dir/Callbacks.cpp.o.d"
  "/root/repo/src/android/SyntacticReach.cpp" "src/android/CMakeFiles/nadroid_android.dir/SyntacticReach.cpp.o" "gcc" "src/android/CMakeFiles/nadroid_android.dir/SyntacticReach.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/nadroid_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nadroid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
