file(REMOVE_RECURSE
  "libnadroid_android.a"
)
