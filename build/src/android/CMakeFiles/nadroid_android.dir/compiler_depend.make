# Empty compiler generated dependencies file for nadroid_android.
# This may be replaced when dependencies are built.
