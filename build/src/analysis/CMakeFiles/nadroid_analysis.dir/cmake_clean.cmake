file(REMOVE_RECURSE
  "CMakeFiles/nadroid_analysis.dir/AllocFlow.cpp.o"
  "CMakeFiles/nadroid_analysis.dir/AllocFlow.cpp.o.d"
  "CMakeFiles/nadroid_analysis.dir/CancelReach.cpp.o"
  "CMakeFiles/nadroid_analysis.dir/CancelReach.cpp.o.d"
  "CMakeFiles/nadroid_analysis.dir/Escape.cpp.o"
  "CMakeFiles/nadroid_analysis.dir/Escape.cpp.o.d"
  "CMakeFiles/nadroid_analysis.dir/Guards.cpp.o"
  "CMakeFiles/nadroid_analysis.dir/Guards.cpp.o.d"
  "CMakeFiles/nadroid_analysis.dir/Lockset.cpp.o"
  "CMakeFiles/nadroid_analysis.dir/Lockset.cpp.o.d"
  "CMakeFiles/nadroid_analysis.dir/PointsTo.cpp.o"
  "CMakeFiles/nadroid_analysis.dir/PointsTo.cpp.o.d"
  "CMakeFiles/nadroid_analysis.dir/ThreadReach.cpp.o"
  "CMakeFiles/nadroid_analysis.dir/ThreadReach.cpp.o.d"
  "libnadroid_analysis.a"
  "libnadroid_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
