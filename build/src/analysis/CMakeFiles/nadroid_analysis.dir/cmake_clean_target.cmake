file(REMOVE_RECURSE
  "libnadroid_analysis.a"
)
