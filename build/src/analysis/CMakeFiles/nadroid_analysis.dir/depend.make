# Empty dependencies file for nadroid_analysis.
# This may be replaced when dependencies are built.
