
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AllocFlow.cpp" "src/analysis/CMakeFiles/nadroid_analysis.dir/AllocFlow.cpp.o" "gcc" "src/analysis/CMakeFiles/nadroid_analysis.dir/AllocFlow.cpp.o.d"
  "/root/repo/src/analysis/CancelReach.cpp" "src/analysis/CMakeFiles/nadroid_analysis.dir/CancelReach.cpp.o" "gcc" "src/analysis/CMakeFiles/nadroid_analysis.dir/CancelReach.cpp.o.d"
  "/root/repo/src/analysis/Escape.cpp" "src/analysis/CMakeFiles/nadroid_analysis.dir/Escape.cpp.o" "gcc" "src/analysis/CMakeFiles/nadroid_analysis.dir/Escape.cpp.o.d"
  "/root/repo/src/analysis/Guards.cpp" "src/analysis/CMakeFiles/nadroid_analysis.dir/Guards.cpp.o" "gcc" "src/analysis/CMakeFiles/nadroid_analysis.dir/Guards.cpp.o.d"
  "/root/repo/src/analysis/Lockset.cpp" "src/analysis/CMakeFiles/nadroid_analysis.dir/Lockset.cpp.o" "gcc" "src/analysis/CMakeFiles/nadroid_analysis.dir/Lockset.cpp.o.d"
  "/root/repo/src/analysis/PointsTo.cpp" "src/analysis/CMakeFiles/nadroid_analysis.dir/PointsTo.cpp.o" "gcc" "src/analysis/CMakeFiles/nadroid_analysis.dir/PointsTo.cpp.o.d"
  "/root/repo/src/analysis/ThreadReach.cpp" "src/analysis/CMakeFiles/nadroid_analysis.dir/ThreadReach.cpp.o" "gcc" "src/analysis/CMakeFiles/nadroid_analysis.dir/ThreadReach.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/threadify/CMakeFiles/nadroid_threadify.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/nadroid_android.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nadroid_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nadroid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
