# Empty compiler generated dependencies file for nadroid_race.
# This may be replaced when dependencies are built.
