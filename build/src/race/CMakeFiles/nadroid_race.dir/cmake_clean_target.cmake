file(REMOVE_RECURSE
  "libnadroid_race.a"
)
