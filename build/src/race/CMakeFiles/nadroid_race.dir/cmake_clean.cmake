file(REMOVE_RECURSE
  "CMakeFiles/nadroid_race.dir/Detector.cpp.o"
  "CMakeFiles/nadroid_race.dir/Detector.cpp.o.d"
  "libnadroid_race.a"
  "libnadroid_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
