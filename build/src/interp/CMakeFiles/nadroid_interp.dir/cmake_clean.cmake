file(REMOVE_RECURSE
  "CMakeFiles/nadroid_interp.dir/Interp.cpp.o"
  "CMakeFiles/nadroid_interp.dir/Interp.cpp.o.d"
  "CMakeFiles/nadroid_interp.dir/Linearize.cpp.o"
  "CMakeFiles/nadroid_interp.dir/Linearize.cpp.o.d"
  "libnadroid_interp.a"
  "libnadroid_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
