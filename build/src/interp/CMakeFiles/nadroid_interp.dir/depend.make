# Empty dependencies file for nadroid_interp.
# This may be replaced when dependencies are built.
