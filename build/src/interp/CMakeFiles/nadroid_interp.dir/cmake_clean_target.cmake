file(REMOVE_RECURSE
  "libnadroid_interp.a"
)
