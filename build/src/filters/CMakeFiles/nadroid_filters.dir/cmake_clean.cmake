file(REMOVE_RECURSE
  "CMakeFiles/nadroid_filters.dir/Engine.cpp.o"
  "CMakeFiles/nadroid_filters.dir/Engine.cpp.o.d"
  "CMakeFiles/nadroid_filters.dir/FilterContext.cpp.o"
  "CMakeFiles/nadroid_filters.dir/FilterContext.cpp.o.d"
  "CMakeFiles/nadroid_filters.dir/Filters.cpp.o"
  "CMakeFiles/nadroid_filters.dir/Filters.cpp.o.d"
  "libnadroid_filters.a"
  "libnadroid_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
