# Empty compiler generated dependencies file for nadroid_filters.
# This may be replaced when dependencies are built.
