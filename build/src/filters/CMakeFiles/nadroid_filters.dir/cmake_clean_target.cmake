file(REMOVE_RECURSE
  "libnadroid_filters.a"
)
