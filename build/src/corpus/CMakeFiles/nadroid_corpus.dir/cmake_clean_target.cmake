file(REMOVE_RECURSE
  "libnadroid_corpus.a"
)
