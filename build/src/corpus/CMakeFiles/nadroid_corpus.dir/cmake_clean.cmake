file(REMOVE_RECURSE
  "CMakeFiles/nadroid_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/nadroid_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/nadroid_corpus.dir/Evaluate.cpp.o"
  "CMakeFiles/nadroid_corpus.dir/Evaluate.cpp.o.d"
  "CMakeFiles/nadroid_corpus.dir/Inject.cpp.o"
  "CMakeFiles/nadroid_corpus.dir/Inject.cpp.o.d"
  "CMakeFiles/nadroid_corpus.dir/Patterns.cpp.o"
  "CMakeFiles/nadroid_corpus.dir/Patterns.cpp.o.d"
  "CMakeFiles/nadroid_corpus.dir/RandomApp.cpp.o"
  "CMakeFiles/nadroid_corpus.dir/RandomApp.cpp.o.d"
  "libnadroid_corpus.a"
  "libnadroid_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
