# Empty dependencies file for nadroid_corpus.
# This may be replaced when dependencies are built.
