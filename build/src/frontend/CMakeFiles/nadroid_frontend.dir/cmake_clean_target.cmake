file(REMOVE_RECURSE
  "libnadroid_frontend.a"
)
