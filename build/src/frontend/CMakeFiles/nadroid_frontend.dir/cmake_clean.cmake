file(REMOVE_RECURSE
  "CMakeFiles/nadroid_frontend.dir/Frontend.cpp.o"
  "CMakeFiles/nadroid_frontend.dir/Frontend.cpp.o.d"
  "CMakeFiles/nadroid_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/nadroid_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/nadroid_frontend.dir/Parser.cpp.o"
  "CMakeFiles/nadroid_frontend.dir/Parser.cpp.o.d"
  "libnadroid_frontend.a"
  "libnadroid_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
