# Empty compiler generated dependencies file for nadroid_frontend.
# This may be replaced when dependencies are built.
