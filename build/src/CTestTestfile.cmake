# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("frontend")
subdirs("android")
subdirs("threadify")
subdirs("analysis")
subdirs("race")
subdirs("filters")
subdirs("report")
subdirs("interp")
subdirs("deva")
subdirs("corpus")
subdirs("driver")
