
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/Classify.cpp" "src/report/CMakeFiles/nadroid_report.dir/Classify.cpp.o" "gcc" "src/report/CMakeFiles/nadroid_report.dir/Classify.cpp.o.d"
  "/root/repo/src/report/Dot.cpp" "src/report/CMakeFiles/nadroid_report.dir/Dot.cpp.o" "gcc" "src/report/CMakeFiles/nadroid_report.dir/Dot.cpp.o.d"
  "/root/repo/src/report/Explain.cpp" "src/report/CMakeFiles/nadroid_report.dir/Explain.cpp.o" "gcc" "src/report/CMakeFiles/nadroid_report.dir/Explain.cpp.o.d"
  "/root/repo/src/report/Json.cpp" "src/report/CMakeFiles/nadroid_report.dir/Json.cpp.o" "gcc" "src/report/CMakeFiles/nadroid_report.dir/Json.cpp.o.d"
  "/root/repo/src/report/Nadroid.cpp" "src/report/CMakeFiles/nadroid_report.dir/Nadroid.cpp.o" "gcc" "src/report/CMakeFiles/nadroid_report.dir/Nadroid.cpp.o.d"
  "/root/repo/src/report/Rank.cpp" "src/report/CMakeFiles/nadroid_report.dir/Rank.cpp.o" "gcc" "src/report/CMakeFiles/nadroid_report.dir/Rank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/filters/CMakeFiles/nadroid_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/nadroid_race.dir/DependInfo.cmake"
  "/root/repo/build/src/threadify/CMakeFiles/nadroid_threadify.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nadroid_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/nadroid_android.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nadroid_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nadroid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
