file(REMOVE_RECURSE
  "CMakeFiles/nadroid_report.dir/Classify.cpp.o"
  "CMakeFiles/nadroid_report.dir/Classify.cpp.o.d"
  "CMakeFiles/nadroid_report.dir/Dot.cpp.o"
  "CMakeFiles/nadroid_report.dir/Dot.cpp.o.d"
  "CMakeFiles/nadroid_report.dir/Explain.cpp.o"
  "CMakeFiles/nadroid_report.dir/Explain.cpp.o.d"
  "CMakeFiles/nadroid_report.dir/Json.cpp.o"
  "CMakeFiles/nadroid_report.dir/Json.cpp.o.d"
  "CMakeFiles/nadroid_report.dir/Nadroid.cpp.o"
  "CMakeFiles/nadroid_report.dir/Nadroid.cpp.o.d"
  "CMakeFiles/nadroid_report.dir/Rank.cpp.o"
  "CMakeFiles/nadroid_report.dir/Rank.cpp.o.d"
  "libnadroid_report.a"
  "libnadroid_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nadroid_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
