file(REMOVE_RECURSE
  "libnadroid_report.a"
)
