# Empty dependencies file for nadroid_report.
# This may be replaced when dependencies are built.
