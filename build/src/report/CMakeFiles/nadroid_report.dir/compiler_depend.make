# Empty compiler generated dependencies file for nadroid_report.
# This may be replaced when dependencies are built.
