file(REMOVE_RECURSE
  "CMakeFiles/firefox_uaf.dir/firefox_uaf.cpp.o"
  "CMakeFiles/firefox_uaf.dir/firefox_uaf.cpp.o.d"
  "firefox_uaf"
  "firefox_uaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefox_uaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
