# Empty dependencies file for firefox_uaf.
# This may be replaced when dependencies are built.
