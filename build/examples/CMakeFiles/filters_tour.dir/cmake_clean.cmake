file(REMOVE_RECURSE
  "CMakeFiles/filters_tour.dir/filters_tour.cpp.o"
  "CMakeFiles/filters_tour.dir/filters_tour.cpp.o.d"
  "filters_tour"
  "filters_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filters_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
