# Empty dependencies file for filters_tour.
# This may be replaced when dependencies are built.
