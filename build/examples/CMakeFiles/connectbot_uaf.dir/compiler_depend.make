# Empty compiler generated dependencies file for connectbot_uaf.
# This may be replaced when dependencies are built.
