file(REMOVE_RECURSE
  "CMakeFiles/connectbot_uaf.dir/connectbot_uaf.cpp.o"
  "CMakeFiles/connectbot_uaf.dir/connectbot_uaf.cpp.o.d"
  "connectbot_uaf"
  "connectbot_uaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connectbot_uaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
