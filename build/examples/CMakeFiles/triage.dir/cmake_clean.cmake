file(REMOVE_RECURSE
  "CMakeFiles/triage.dir/triage.cpp.o"
  "CMakeFiles/triage.dir/triage.cpp.o.d"
  "triage"
  "triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
