# Empty dependencies file for triage.
# This may be replaced when dependencies are built.
