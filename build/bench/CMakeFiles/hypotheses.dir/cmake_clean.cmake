file(REMOVE_RECURSE
  "CMakeFiles/hypotheses.dir/hypotheses.cpp.o"
  "CMakeFiles/hypotheses.dir/hypotheses.cpp.o.d"
  "hypotheses"
  "hypotheses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypotheses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
