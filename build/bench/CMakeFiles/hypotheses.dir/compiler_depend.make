# Empty compiler generated dependencies file for hypotheses.
# This may be replaced when dependencies are built.
