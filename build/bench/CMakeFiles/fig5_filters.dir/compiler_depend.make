# Empty compiler generated dependencies file for fig5_filters.
# This may be replaced when dependencies are built.
