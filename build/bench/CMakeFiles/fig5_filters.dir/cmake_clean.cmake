file(REMOVE_RECURSE
  "CMakeFiles/fig5_filters.dir/fig5_filters.cpp.o"
  "CMakeFiles/fig5_filters.dir/fig5_filters.cpp.o.d"
  "fig5_filters"
  "fig5_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
