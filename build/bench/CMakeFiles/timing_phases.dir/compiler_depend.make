# Empty compiler generated dependencies file for timing_phases.
# This may be replaced when dependencies are built.
