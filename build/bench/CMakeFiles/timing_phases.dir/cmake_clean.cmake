file(REMOVE_RECURSE
  "CMakeFiles/timing_phases.dir/timing_phases.cpp.o"
  "CMakeFiles/timing_phases.dir/timing_phases.cpp.o.d"
  "timing_phases"
  "timing_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
