# Empty compiler generated dependencies file for table2_falseneg.
# This may be replaced when dependencies are built.
