file(REMOVE_RECURSE
  "CMakeFiles/table2_falseneg.dir/table2_falseneg.cpp.o"
  "CMakeFiles/table2_falseneg.dir/table2_falseneg.cpp.o.d"
  "table2_falseneg"
  "table2_falseneg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_falseneg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
