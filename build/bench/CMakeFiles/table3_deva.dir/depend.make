# Empty dependencies file for table3_deva.
# This may be replaced when dependencies are built.
