file(REMOVE_RECURSE
  "CMakeFiles/table3_deva.dir/table3_deva.cpp.o"
  "CMakeFiles/table3_deva.dir/table3_deva.cpp.o.d"
  "table3_deva"
  "table3_deva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_deva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
