
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_pipeline.cpp" "bench/CMakeFiles/table1_pipeline.dir/table1_pipeline.cpp.o" "gcc" "bench/CMakeFiles/table1_pipeline.dir/table1_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/nadroid_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/deva/CMakeFiles/nadroid_deva.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/nadroid_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/nadroid_report.dir/DependInfo.cmake"
  "/root/repo/build/src/filters/CMakeFiles/nadroid_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/nadroid_race.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/nadroid_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nadroid_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/threadify/CMakeFiles/nadroid_threadify.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/nadroid_android.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nadroid_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nadroid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
