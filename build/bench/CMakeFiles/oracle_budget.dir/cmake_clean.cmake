file(REMOVE_RECURSE
  "CMakeFiles/oracle_budget.dir/oracle_budget.cpp.o"
  "CMakeFiles/oracle_budget.dir/oracle_budget.cpp.o.d"
  "oracle_budget"
  "oracle_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
