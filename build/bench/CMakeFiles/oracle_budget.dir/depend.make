# Empty dependencies file for oracle_budget.
# This may be replaced when dependencies are built.
