# Empty dependencies file for nadroid_tests.
# This may be replaced when dependencies are built.
