
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AidsTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/AidsTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/AidsTest.cpp.o.d"
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/AndroidTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/AndroidTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/AndroidTest.cpp.o.d"
  "/root/repo/tests/CancellationTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/CancellationTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/CancellationTest.cpp.o.d"
  "/root/repo/tests/CorpusTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/CorpusTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/CorpusTest.cpp.o.d"
  "/root/repo/tests/DevaTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/DevaTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/DevaTest.cpp.o.d"
  "/root/repo/tests/ExamplesTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/ExamplesTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/ExamplesTest.cpp.o.d"
  "/root/repo/tests/ExplainTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/ExplainTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/ExplainTest.cpp.o.d"
  "/root/repo/tests/ExtensionsTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/ExtensionsTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/ExtensionsTest.cpp.o.d"
  "/root/repo/tests/FiltersTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/FiltersTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/FiltersTest.cpp.o.d"
  "/root/repo/tests/FrontendTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/FrontendTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/FrontendTest.cpp.o.d"
  "/root/repo/tests/FuzzTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/FuzzTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/FuzzTest.cpp.o.d"
  "/root/repo/tests/InterpConcurrencyTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/InterpConcurrencyTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/InterpConcurrencyTest.cpp.o.d"
  "/root/repo/tests/InterpSemanticsTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/InterpSemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/InterpSemanticsTest.cpp.o.d"
  "/root/repo/tests/InterpTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/InterpTest.cpp.o.d"
  "/root/repo/tests/IrTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/IrTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/IrTest.cpp.o.d"
  "/root/repo/tests/MultiLooperTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/MultiLooperTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/MultiLooperTest.cpp.o.d"
  "/root/repo/tests/PipelineTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/PipelineTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/PipelineTest.cpp.o.d"
  "/root/repo/tests/PointsToTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/PointsToTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/PointsToTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/RaceTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/RaceTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/RaceTest.cpp.o.d"
  "/root/repo/tests/ReportTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/ReportTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/ReportTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/ThreadifyTest.cpp" "tests/CMakeFiles/nadroid_tests.dir/ThreadifyTest.cpp.o" "gcc" "tests/CMakeFiles/nadroid_tests.dir/ThreadifyTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/nadroid_report.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/nadroid_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/deva/CMakeFiles/nadroid_deva.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/nadroid_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/nadroid_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nadroid_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/threadify/CMakeFiles/nadroid_threadify.dir/DependInfo.cmake"
  "/root/repo/build/src/filters/CMakeFiles/nadroid_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/nadroid_race.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/nadroid_android.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/nadroid_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nadroid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
