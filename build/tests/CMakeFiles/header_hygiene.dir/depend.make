# Empty dependencies file for header_hygiene.
# This may be replaced when dependencies are built.
