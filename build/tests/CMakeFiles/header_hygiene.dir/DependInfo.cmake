
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/tests/hygiene/analysis_AllocFlow.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_AllocFlow.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_AllocFlow.cpp.o.d"
  "/root/repo/build/tests/hygiene/analysis_CancelReach.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_CancelReach.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_CancelReach.cpp.o.d"
  "/root/repo/build/tests/hygiene/analysis_Escape.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_Escape.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_Escape.cpp.o.d"
  "/root/repo/build/tests/hygiene/analysis_Guards.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_Guards.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_Guards.cpp.o.d"
  "/root/repo/build/tests/hygiene/analysis_Lockset.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_Lockset.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_Lockset.cpp.o.d"
  "/root/repo/build/tests/hygiene/analysis_PointsTo.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_PointsTo.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_PointsTo.cpp.o.d"
  "/root/repo/build/tests/hygiene/analysis_ThreadReach.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_ThreadReach.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/analysis_ThreadReach.cpp.o.d"
  "/root/repo/build/tests/hygiene/android_Api.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/android_Api.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/android_Api.cpp.o.d"
  "/root/repo/build/tests/hygiene/android_Callbacks.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/android_Callbacks.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/android_Callbacks.cpp.o.d"
  "/root/repo/build/tests/hygiene/android_SyntacticReach.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/android_SyntacticReach.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/android_SyntacticReach.cpp.o.d"
  "/root/repo/build/tests/hygiene/corpus_Corpus.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/corpus_Corpus.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/corpus_Corpus.cpp.o.d"
  "/root/repo/build/tests/hygiene/corpus_Evaluate.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/corpus_Evaluate.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/corpus_Evaluate.cpp.o.d"
  "/root/repo/build/tests/hygiene/corpus_Inject.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/corpus_Inject.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/corpus_Inject.cpp.o.d"
  "/root/repo/build/tests/hygiene/corpus_Patterns.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/corpus_Patterns.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/corpus_Patterns.cpp.o.d"
  "/root/repo/build/tests/hygiene/corpus_RandomApp.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/corpus_RandomApp.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/corpus_RandomApp.cpp.o.d"
  "/root/repo/build/tests/hygiene/deva_Deva.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/deva_Deva.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/deva_Deva.cpp.o.d"
  "/root/repo/build/tests/hygiene/filters_Engine.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/filters_Engine.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/filters_Engine.cpp.o.d"
  "/root/repo/build/tests/hygiene/filters_Filter.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/filters_Filter.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/filters_Filter.cpp.o.d"
  "/root/repo/build/tests/hygiene/frontend_Frontend.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/frontend_Frontend.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/frontend_Frontend.cpp.o.d"
  "/root/repo/build/tests/hygiene/frontend_Lexer.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/frontend_Lexer.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/frontend_Lexer.cpp.o.d"
  "/root/repo/build/tests/hygiene/frontend_Parser.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/frontend_Parser.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/frontend_Parser.cpp.o.d"
  "/root/repo/build/tests/hygiene/interp_Interp.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/interp_Interp.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/interp_Interp.cpp.o.d"
  "/root/repo/build/tests/hygiene/interp_Linearize.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/interp_Linearize.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/interp_Linearize.cpp.o.d"
  "/root/repo/build/tests/hygiene/ir_IRBuilder.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_IRBuilder.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_IRBuilder.cpp.o.d"
  "/root/repo/build/tests/hygiene/ir_Ir.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_Ir.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_Ir.cpp.o.d"
  "/root/repo/build/tests/hygiene/ir_LocalInfo.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_LocalInfo.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_LocalInfo.cpp.o.d"
  "/root/repo/build/tests/hygiene/ir_Printer.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_Printer.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_Printer.cpp.o.d"
  "/root/repo/build/tests/hygiene/ir_Stmt.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_Stmt.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_Stmt.cpp.o.d"
  "/root/repo/build/tests/hygiene/ir_Verifier.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_Verifier.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/ir_Verifier.cpp.o.d"
  "/root/repo/build/tests/hygiene/race_Detector.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/race_Detector.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/race_Detector.cpp.o.d"
  "/root/repo/build/tests/hygiene/race_Warning.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/race_Warning.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/race_Warning.cpp.o.d"
  "/root/repo/build/tests/hygiene/report_Classify.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Classify.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Classify.cpp.o.d"
  "/root/repo/build/tests/hygiene/report_Dot.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Dot.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Dot.cpp.o.d"
  "/root/repo/build/tests/hygiene/report_Explain.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Explain.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Explain.cpp.o.d"
  "/root/repo/build/tests/hygiene/report_Json.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Json.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Json.cpp.o.d"
  "/root/repo/build/tests/hygiene/report_Nadroid.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Nadroid.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Nadroid.cpp.o.d"
  "/root/repo/build/tests/hygiene/report_Rank.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Rank.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/report_Rank.cpp.o.d"
  "/root/repo/build/tests/hygiene/support_Casting.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_Casting.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_Casting.cpp.o.d"
  "/root/repo/build/tests/hygiene/support_Diagnostics.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_Diagnostics.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_Diagnostics.cpp.o.d"
  "/root/repo/build/tests/hygiene/support_Rng.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_Rng.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_Rng.cpp.o.d"
  "/root/repo/build/tests/hygiene/support_SourceLoc.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_SourceLoc.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_SourceLoc.cpp.o.d"
  "/root/repo/build/tests/hygiene/support_Statistic.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_Statistic.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_Statistic.cpp.o.d"
  "/root/repo/build/tests/hygiene/support_StringUtils.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_StringUtils.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_StringUtils.cpp.o.d"
  "/root/repo/build/tests/hygiene/support_TableWriter.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_TableWriter.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/support_TableWriter.cpp.o.d"
  "/root/repo/build/tests/hygiene/threadify_ThreadForest.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/threadify_ThreadForest.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/threadify_ThreadForest.cpp.o.d"
  "/root/repo/build/tests/hygiene/threadify_Threadifier.cpp" "tests/CMakeFiles/header_hygiene.dir/hygiene/threadify_Threadifier.cpp.o" "gcc" "tests/CMakeFiles/header_hygiene.dir/hygiene/threadify_Threadifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
