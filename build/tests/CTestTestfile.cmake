# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nadroid_tests[1]_include.cmake")
add_test(cli_connectbot "/root/repo/build/src/driver/nadroid" "/root/repo/examples/apps/connectbot.air")
set_tests_properties(cli_connectbot PROPERTIES  PASS_REGULAR_EXPRESSION "3 potential UAFs, 3 after sound filters, 2 after unsound filters" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;46;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_messenger_clean "/root/repo/build/src/driver/nadroid" "/root/repo/examples/apps/messenger.air")
set_tests_properties(cli_messenger_clean PROPERTIES  PASS_REGULAR_EXPRESSION "0 after unsound filters" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;51;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_firefox_json "/root/repo/build/src/driver/nadroid" "--json" "/root/repo/examples/apps/firefox.air")
set_tests_properties(cli_firefox_json PROPERTIES  PASS_REGULAR_EXPRESSION "\"stage\": \"remaining\", \"type\": \"C-NT\"" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;56;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_firefox_dot "/root/repo/build/src/driver/nadroid" "--dot" "/root/repo/examples/apps/firefox.air")
set_tests_properties(cli_firefox_dot PROPERTIES  PASS_REGULAR_EXPRESSION "label=\"UAF\"" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;61;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_deva_baseline "/root/repo/build/src/driver/nadroid" "--deva" "/root/repo/examples/apps/messenger.air")
set_tests_properties(cli_deva_baseline PROPERTIES  PASS_REGULAR_EXPRESSION "DEvA found" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;66;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_bad_args "/root/repo/build/src/driver/nadroid" "--no-such-flag")
set_tests_properties(cli_rejects_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;71;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_export_corpus "/root/repo/build/src/driver/nadroid" "--export-corpus" "/root/repo/build/tests")
set_tests_properties(cli_export_corpus PROPERTIES  PASS_REGULAR_EXPRESSION "wrote 27 apps" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_reanalyze_exported "/root/repo/build/src/driver/nadroid" "/root/repo/build/tests/ConnectBot.air")
set_tests_properties(cli_reanalyze_exported PROPERTIES  DEPENDS "cli_export_corpus" PASS_REGULAR_EXPRESSION "197 potential UAFs, 33 after sound filters, 13 after unsound filters" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;79;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_missing_file "/root/repo/build/src/driver/nadroid" "/does/not/exist.air")
set_tests_properties(cli_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;85;add_test;/root/repo/tests/CMakeLists.txt;0;")
