#include "report/Nadroid.h"
