#include "corpus/Corpus.h"
