#include "support/Diagnostics.h"
