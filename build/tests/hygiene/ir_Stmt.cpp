#include "ir/Stmt.h"
