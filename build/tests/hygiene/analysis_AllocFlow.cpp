#include "analysis/AllocFlow.h"
