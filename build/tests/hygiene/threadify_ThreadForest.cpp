#include "threadify/ThreadForest.h"
