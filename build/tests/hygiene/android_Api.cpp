#include "android/Api.h"
