#include "support/Statistic.h"
