#include "support/Casting.h"
