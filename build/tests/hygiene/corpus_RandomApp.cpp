#include "corpus/RandomApp.h"
