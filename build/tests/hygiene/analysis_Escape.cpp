#include "analysis/Escape.h"
