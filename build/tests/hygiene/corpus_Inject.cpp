#include "corpus/Inject.h"
