#include "android/Callbacks.h"
