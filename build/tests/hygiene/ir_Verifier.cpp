#include "ir/Verifier.h"
