#include "report/Explain.h"
