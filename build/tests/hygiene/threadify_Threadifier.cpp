#include "threadify/Threadifier.h"
