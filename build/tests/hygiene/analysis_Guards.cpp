#include "analysis/Guards.h"
