#include "analysis/PointsTo.h"
