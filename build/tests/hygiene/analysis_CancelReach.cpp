#include "analysis/CancelReach.h"
