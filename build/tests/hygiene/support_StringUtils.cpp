#include "support/StringUtils.h"
