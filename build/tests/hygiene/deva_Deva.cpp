#include "deva/Deva.h"
