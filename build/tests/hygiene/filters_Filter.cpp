#include "filters/Filter.h"
