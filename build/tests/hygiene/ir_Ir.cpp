#include "ir/Ir.h"
