#include "analysis/Lockset.h"
