#include "race/Warning.h"
