#include "analysis/ThreadReach.h"
