#include "frontend/Lexer.h"
