#include "ir/LocalInfo.h"
