#include "ir/IRBuilder.h"
