#include "ir/Printer.h"
