#include "android/SyntacticReach.h"
