#include "corpus/Patterns.h"
