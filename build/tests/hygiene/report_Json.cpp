#include "report/Json.h"
