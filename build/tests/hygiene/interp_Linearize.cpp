#include "interp/Linearize.h"
