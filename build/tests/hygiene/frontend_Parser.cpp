#include "frontend/Parser.h"
