#include "filters/Engine.h"
