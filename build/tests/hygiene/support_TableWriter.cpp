#include "support/TableWriter.h"
