#include "corpus/Evaluate.h"
