#include "report/Classify.h"
