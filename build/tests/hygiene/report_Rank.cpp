#include "report/Rank.h"
