#include "support/Rng.h"
