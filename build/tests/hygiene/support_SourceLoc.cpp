#include "support/SourceLoc.h"
