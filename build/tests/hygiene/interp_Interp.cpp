#include "interp/Interp.h"
