#include "report/Dot.h"
