#include "frontend/Frontend.h"
