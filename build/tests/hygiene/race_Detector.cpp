#include "race/Detector.h"
